// Adversarial scenario matrix: adaptive attacks x preprocessing defenses x
// detectors — the paper's central claim evaluated against attackers that
// know the detectors exist (ROADMAP "adversary-aware scenario matrix";
// Quiring & Rieck, arXiv:2003.08633, for the attacker moves; the pixmask
// line for the defenses).
//
// Protocol per defense chain (core/preprocess_defense.h):
//   1. Regime-A training scenes + PLAIN attacks, both passed through the
//      defense, scored by the full battery; white-box calibration per
//      detector column. The defender calibrates on the attacks it knows
//      (plain), never on the adaptive ones — that is the realistic split.
//   2. Regime-B evaluation scenes; each attack family (plain, noise_mask,
//      offgrid, jpeg_robust — src/attack/adaptive.h) crafted once per
//      scene, defended, scored. Accuracy (at the trained threshold) and
//      ROC-AUC (threshold-free separability) per grid cell, plus the
//      3-method majority-vote ensemble per attack x defense.
//
//   matrix_adaptive [--quick] [--json] [--out FILE] [--seed S] [--threads N]
//                   [--regress-against FILE] [--no-manifest]
//   matrix_adaptive --validate FILE
//
// --json writes the `decam-matrix-bench-v1` document (default
// BENCH_matrix.json — run from the repo root to refresh the committed
// grid) with a `decam-run-manifest-v1` sidecar next to it, re-reading the
// document through validate_matrix_json first so a malformed file is never
// written silently. The document also carries a "benchmarks" array of
// kernel-bench style runtime entries (fixed geometry in quick and full
// modes, so the 2x --regress-against tripwire compares cleanly across
// modes — same reasoning as kernel_bench's spectrum entries).
#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "attack/adaptive.h"
#include "bench_common.h"
#include "core/evaluation.h"
#include "core/preprocess_defense.h"
#include "core/roc.h"
#include "data/rng.h"
#include "data/synth.h"
#include "imaging/scale.h"
#include "report/table.h"
#include "runtime/parallel.h"

namespace {

using namespace decam;
using namespace decam::core;
using bench::micro::BenchResult;
using bench::micro::JsonParser;
using bench::micro::JsonValue;

struct Options {
  bool quick = false;
  bool json = false;
  bool manifest = true;
  std::string out = "BENCH_matrix.json";
  std::uint64_t seed = 42;
  std::string validate;  // non-empty: validate this file and exit
  std::string regress;   // non-empty: compare against this baseline JSON
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        std::exit(2);
      }
      runtime::set_thread_count(threads);
    } else if (std::strcmp(argv[i], "--validate") == 0 && i + 1 < argc) {
      opt.validate = argv[++i];
    } else if (std::strcmp(argv[i], "--regress-against") == 0 &&
               i + 1 < argc) {
      opt.regress = argv[++i];
    } else if (std::strcmp(argv[i], "--no-manifest") == 0) {
      opt.manifest = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--out FILE] [--seed S] "
                   "[--threads N] [--regress-against FILE] [--no-manifest] | "
                   "--validate FILE\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

// ------------------------------------------------------------------ grid --

enum AttackKind { kPlain = 0, kNoiseMask, kOffGrid, kJpegRobust };
constexpr int kAttackCount = 4;
const char* const kAttackNames[kAttackCount] = {"plain", "noise_mask",
                                                "offgrid", "jpeg_robust"};

struct DetectorColumn {
  const char* name;
  double ScoreRow::* member;
};
const DetectorColumn kDetectors[] = {
    {"scaling/mse", &ScoreRow::scaling_mse},
    {"filtering/ssim", &ScoreRow::filtering_ssim},
    {"steganalysis/csp", &ScoreRow::csp},
    {"histogram", &ScoreRow::histogram},
};
constexpr int kDetectorCount = 4;

struct Cell {
  std::string attack;
  std::string defense;
  std::string detector;
  double accuracy = 0.0;
  double auc = 0.0;
};

struct EnsembleCell {
  std::string attack;
  std::string defense;
  double accuracy = 0.0;
};

struct MatrixConfig {
  int n = 24;            // images per class per split
  int scene_min = 224;   // regime scene geometry
  int scene_max = 320;
  int target = 64;       // square payload geometry
  int jpeg_rounds = 4;   // jpeg_robust_attack iteration budget
  double spread = 0.7;  // off-grid blend strength (see adaptive.h)
  std::uint64_t seed = 42;
};

std::vector<Image> make_scenes(data::Regime regime, const MatrixConfig& cfg,
                               std::uint64_t seed) {
  data::SceneParams params = data::scene_params(regime);
  params.min_side = cfg.scene_min;
  params.max_side = cfg.scene_max;
  // Fork one RNG per image serially, then generate in parallel: the scene
  // set is identical at any thread count.
  data::Rng root(seed);
  std::vector<data::Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(cfg.n));
  for (int i = 0; i < cfg.n; ++i) rngs.push_back(root.fork());
  return runtime::parallel_map(rngs, [&](const data::Rng& rng) {
    data::Rng local = rng;
    return data::generate_scene(params, local);
  });
}

// Crafts all four attack families for one (scene, target) pair.
std::array<Image, kAttackCount> craft_family(const Image& scene,
                                             const Image& target,
                                             const MatrixConfig& cfg,
                                             std::size_t index) {
  attack::AttackOptions base;
  base.eps = 2.0;
  std::array<Image, kAttackCount> out;
  out[kPlain] = attack::craft_attack(scene, target, base).image;
  attack::NoiseMaskOptions noise;
  noise.base = base;
  noise.seed = cfg.seed * 1000003 + index;
  out[kNoiseMask] = attack::noise_masked_attack(scene, target, noise).image;
  // Re-spread the plain attack instead of re-solving the QP — identical
  // result to off_grid_spread_attack at half the craft cost.
  out[kOffGrid] = attack::spread_off_grid(out[kPlain], target.width(),
                                          target.height(), base.algo,
                                          cfg.spread);
  attack::JpegRobustOptions jpeg;
  jpeg.base = base;
  jpeg.quality = 75;
  jpeg.max_rounds = cfg.jpeg_rounds;
  out[kJpegRobust] =
      attack::jpeg_robust_attack(scene, target, jpeg).attack.image;
  return out;
}

std::vector<ScoreRow> score_defended(const Battery& battery,
                                     const DefenseChain& chain,
                                     const std::vector<Image>& images) {
  return runtime::parallel_map(images, [&](const Image& img) {
    return battery.score(chain.apply(img));
  });
}

std::vector<double> column(const std::vector<ScoreRow>& rows,
                           double ScoreRow::* member) {
  return ExperimentData::column(rows, member);
}

// ------------------------------------------------------------------ JSON --

std::string matrix_json(const MatrixConfig& cfg, bool quick,
                        const std::vector<std::string>& defenses,
                        const std::vector<Cell>& cells,
                        const std::vector<EnsembleCell>& ensemble,
                        const std::vector<BenchResult>& benchmarks) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"decam-matrix-bench-v1\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"n\": %d, \"scene_min\": %d, "
                "\"scene_max\": %d, \"target\": %d, \"jpeg_rounds\": %d, "
                "\"seed\": %llu},\n",
                cfg.n, cfg.scene_min, cfg.scene_max, cfg.target,
                cfg.jpeg_rounds,
                static_cast<unsigned long long>(cfg.seed));
  out << buf;
  out << "  \"attacks\": [";
  for (int a = 0; a < kAttackCount; ++a) {
    out << (a > 0 ? ", " : "") << '"' << kAttackNames[a] << '"';
  }
  out << "],\n  \"defenses\": [";
  for (std::size_t d = 0; d < defenses.size(); ++d) {
    out << (d > 0 ? ", " : "") << '"' << defenses[d] << '"';
  }
  out << "],\n  \"detectors\": [";
  for (int m = 0; m < kDetectorCount; ++m) {
    out << (m > 0 ? ", " : "") << '"' << kDetectors[m].name << '"';
  }
  out << "],\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"attack\": \"%s\", \"defense\": \"%s\", "
                  "\"detector\": \"%s\", \"accuracy\": %.4f, "
                  "\"auc\": %.4f}%s\n",
                  c.attack.c_str(), c.defense.c_str(), c.detector.c_str(),
                  c.accuracy, c.auc, i + 1 < cells.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"ensemble\": [\n";
  for (std::size_t i = 0; i < ensemble.size(); ++i) {
    const EnsembleCell& c = ensemble[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"attack\": \"%s\", \"defense\": \"%s\", "
                  "\"accuracy\": %.4f}%s\n",
                  c.attack.c_str(), c.defense.c_str(), c.accuracy,
                  i + 1 < ensemble.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const BenchResult& r = benchmarks[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"pixels\": %zu, "
                  "\"ms_per_iter\": %.6f, \"ns_per_pixel\": %.6f, "
                  "\"mpix_per_s\": %.3f, \"iters\": %d}%s\n",
                  r.name.c_str(), r.pixels, r.ms_per_iter, r.ns_per_pixel,
                  r.mpix_per_s, r.iters,
                  i + 1 < benchmarks.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  return out.str();
}

// Validates a `decam-matrix-bench-v1` document: schema marker, the three
// axis arrays, a FULL cells grid (attacks x defenses x detectors), an
// ensemble grid (attacks x defenses), rates in [0, 1], and kernel-bench
// style runtime entries. Empty string on success, else the first violation.
std::string validate_matrix_json(std::string_view text) {
  JsonValue root;
  if (!JsonParser(text).parse(root)) return "not parseable as JSON";
  if (root.kind != JsonValue::Kind::Object) return "root is not an object";
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String ||
      schema->string != "decam-matrix-bench-v1") {
    return "missing/wrong schema marker";
  }
  const JsonValue* quick = root.find("quick");
  if (quick == nullptr || quick->kind != JsonValue::Kind::Bool) {
    return "missing boolean 'quick'";
  }
  const JsonValue* config = root.find("config");
  if (config == nullptr || config->kind != JsonValue::Kind::Object) {
    return "missing 'config' object";
  }
  std::size_t axis_sizes[3] = {0, 0, 0};
  const char* const axes[3] = {"attacks", "defenses", "detectors"};
  for (int i = 0; i < 3; ++i) {
    const JsonValue* axis = root.find(axes[i]);
    if (axis == nullptr || axis->kind != JsonValue::Kind::Array ||
        axis->array.empty()) {
      return std::string("missing non-empty '") + axes[i] + "' array";
    }
    for (const JsonValue& v : axis->array) {
      if (v.kind != JsonValue::Kind::String || v.string.empty()) {
        return std::string("non-string entry in '") + axes[i] + "'";
      }
    }
    axis_sizes[i] = axis->array.size();
  }
  const JsonValue* cells = root.find("cells");
  if (cells == nullptr || cells->kind != JsonValue::Kind::Array) {
    return "missing 'cells' array";
  }
  if (cells->array.size() != axis_sizes[0] * axis_sizes[1] * axis_sizes[2]) {
    return "'cells' is not the full attack x defense x detector grid";
  }
  for (const JsonValue& c : cells->array) {
    if (c.kind != JsonValue::Kind::Object) return "cell not an object";
    for (const char* key : {"attack", "defense", "detector"}) {
      const JsonValue* v = c.find(key);
      if (v == nullptr || v->kind != JsonValue::Kind::String ||
          v->string.empty()) {
        return std::string("cell without non-empty '") + key + "'";
      }
    }
    for (const char* key : {"accuracy", "auc"}) {
      const JsonValue* v = c.find(key);
      if (v == nullptr || v->kind != JsonValue::Kind::Number ||
          v->number < 0.0 || v->number > 1.0) {
        return std::string("cell with '") + key + "' outside [0, 1]";
      }
    }
  }
  const JsonValue* ensemble = root.find("ensemble");
  if (ensemble == nullptr || ensemble->kind != JsonValue::Kind::Array) {
    return "missing 'ensemble' array";
  }
  if (ensemble->array.size() != axis_sizes[0] * axis_sizes[1]) {
    return "'ensemble' is not the full attack x defense grid";
  }
  for (const JsonValue& c : ensemble->array) {
    if (c.kind != JsonValue::Kind::Object) {
      return "ensemble cell not an object";
    }
    const JsonValue* acc = c.find("accuracy");
    if (acc == nullptr || acc->kind != JsonValue::Kind::Number ||
        acc->number < 0.0 || acc->number > 1.0) {
      return "ensemble cell with accuracy outside [0, 1]";
    }
  }
  const JsonValue* benches = root.find("benchmarks");
  if (benches == nullptr || benches->kind != JsonValue::Kind::Array ||
      benches->array.empty()) {
    return "missing non-empty 'benchmarks' array";
  }
  for (const JsonValue& b : benches->array) {
    if (b.kind != JsonValue::Kind::Object) return "benchmark not an object";
    const JsonValue* name = b.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::String ||
        name->string.empty()) {
      return "benchmark without a name";
    }
    for (const char* key : {"pixels", "ms_per_iter", "ns_per_pixel",
                            "mpix_per_s", "iters"}) {
      const JsonValue* v = b.find(key);
      if (v == nullptr || v->kind != JsonValue::Kind::Number ||
          !(v->number > 0.0)) {
        return "benchmark '" + name->string + "': non-positive " + key;
      }
    }
  }
  return {};
}

int validate_matrix_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "matrix_adaptive: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string error = validate_matrix_json(text.str());
  if (!error.empty()) {
    std::fprintf(stderr, "matrix_adaptive: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("%s: valid decam-matrix-bench-v1 document\n", path.c_str());
  return 0;
}

// micro::check_regressions validates its baseline as decam-kernel-bench-v1,
// so the matrix document needs its own comparator over the same
// "benchmarks" runtime entries (same 2x ns/pixel tripwire semantics).
int check_matrix_regressions(const std::vector<BenchResult>& results,
                             const std::string& path, double factor = 2.0) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "matrix_adaptive: cannot open baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string error = validate_matrix_json(text.str());
  if (!error.empty()) {
    std::fprintf(stderr, "matrix_adaptive: baseline %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  JsonValue root;
  JsonParser(text.str()).parse(root);  // validated above
  const JsonValue& baseline = *root.find("benchmarks");

  std::printf("\nregression check vs %s (fail above %.1fx ns/px):\n",
              path.c_str(), factor);
  int regressions = 0;
  int compared = 0;
  for (const BenchResult& r : results) {
    const JsonValue* entry = nullptr;
    for (const JsonValue& b : baseline.array) {
      if (b.find("name")->string == r.name) {
        entry = &b;
        break;
      }
    }
    if (entry == nullptr) continue;
    ++compared;
    const double base_ns = entry->find("ns_per_pixel")->number;
    const double ratio = r.ns_per_pixel / base_ns;
    const bool bad = ratio > factor;
    if (bad || ratio > 1.25) {
      std::printf("  %-34s %8.3f -> %8.3f ns/px  (%.2fx)%s\n", r.name.c_str(),
                  base_ns, r.ns_per_pixel, ratio, bad ? "  REGRESSION" : "");
    }
    regressions += bad ? 1 : 0;
  }
  std::printf("  %d/%zu benchmarks compared, %d regression%s\n", compared,
              results.size(), regressions, regressions == 1 ? "" : "s");
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.validate.empty()) return validate_matrix_file(opt.validate);

  MatrixConfig cfg;
  cfg.seed = opt.seed;
  if (opt.quick) {
    cfg.n = 8;
    cfg.scene_min = 112;
    cfg.scene_max = 160;
    cfg.target = 32;
    cfg.jpeg_rounds = 2;
  }

  std::printf(
      "=== Adversarial matrix: attacks x defenses x detectors ===\n"
      "config: n=%d scenes=%d-%dpx target=%dx%d seed=%llu%s\n\n",
      cfg.n, cfg.scene_min, cfg.scene_max, cfg.target, cfg.target,
      static_cast<unsigned long long>(cfg.seed), opt.quick ? " [quick]" : "");

  // ---- datasets and attacks (defense-independent, crafted once) ----------
  const std::vector<Image> train_scenes =
      make_scenes(data::Regime::A, cfg, cfg.seed);
  const std::vector<Image> eval_scenes =
      make_scenes(data::Regime::B, cfg, cfg.seed + 1);
  const std::vector<Image> train_targets = data::generate_targets(
      cfg.target, cfg.target, cfg.n, cfg.seed ^ 0x74617267u);
  const std::vector<Image> eval_targets = data::generate_targets(
      cfg.target, cfg.target, cfg.n, (cfg.seed + 1) ^ 0x74617267u);

  std::fprintf(stderr, "crafting %d train + %dx%d eval attacks...\n", cfg.n,
               kAttackCount, cfg.n);
  attack::AttackOptions base_attack;
  base_attack.eps = 2.0;
  std::vector<Image> train_attacks(train_scenes.size());
  runtime::parallel_for(0, train_scenes.size(), [&](std::size_t i) {
    train_attacks[i] =
        attack::craft_attack(train_scenes[i], train_targets[i], base_attack)
            .image;
  });
  std::vector<std::array<Image, kAttackCount>> eval_attacks(
      eval_scenes.size());
  runtime::parallel_for(0, eval_scenes.size(), [&](std::size_t i) {
    eval_attacks[i] = craft_family(eval_scenes[i], eval_targets[i], cfg, i);
  });

  // ---- the grid ----------------------------------------------------------
  const std::vector<std::string> defense_specs = {
      "none", "squeeze4", "median3", "gauss0.8", "jpeg75"};
  ExperimentConfig battery_config;
  battery_config.target_width = battery_config.target_height = cfg.target;
  const Battery battery(battery_config);

  std::vector<Cell> cells;
  std::vector<EnsembleCell> ensemble_cells;
  for (const std::string& spec : defense_specs) {
    const DefenseChain chain = DefenseChain::parse(spec);
    std::fprintf(stderr, "scoring defense '%s'...\n", spec.c_str());
    const std::vector<ScoreRow> train_benign =
        score_defended(battery, chain, train_scenes);
    const std::vector<ScoreRow> train_attack =
        score_defended(battery, chain, train_attacks);
    const std::vector<ScoreRow> eval_benign =
        score_defended(battery, chain, eval_scenes);

    // Calibrate every detector column on the defended PLAIN training split.
    std::array<Calibration, kDetectorCount> calibrations;
    for (int m = 0; m < kDetectorCount; ++m) {
      calibrations[m] =
          calibrate_white_box(column(train_benign, kDetectors[m].member),
                              column(train_attack, kDetectors[m].member))
              .calibration;
    }

    for (int a = 0; a < kAttackCount; ++a) {
      std::vector<Image> attack_images;
      attack_images.reserve(eval_attacks.size());
      for (const auto& family : eval_attacks) {
        attack_images.push_back(family[static_cast<std::size_t>(a)]);
      }
      const std::vector<ScoreRow> eval_attack =
          score_defended(battery, chain, attack_images);

      for (int m = 0; m < kDetectorCount; ++m) {
        const std::vector<double> benign =
            column(eval_benign, kDetectors[m].member);
        const std::vector<double> attacked =
            column(eval_attack, kDetectors[m].member);
        Cell cell;
        cell.attack = kAttackNames[a];
        cell.defense = spec;
        cell.detector = kDetectors[m].name;
        cell.accuracy =
            evaluate(benign, attacked, calibrations[m]).accuracy();
        cell.auc =
            roc_curve(benign, attacked, calibrations[m].polarity).auc;
        cells.push_back(cell);
      }

      // 3-method majority vote (scaling/mse, filtering/ssim, csp) with the
      // same defended calibrations — the paper's ensemble under fire.
      auto vote = [&](const ScoreRow& row) {
        int votes = 0;
        if (is_attack(row.scaling_mse, calibrations[0])) ++votes;
        if (is_attack(row.filtering_ssim, calibrations[1])) ++votes;
        if (is_attack(row.csp, calibrations[2])) ++votes;
        return votes >= 2;
      };
      std::vector<bool> benign_flags;
      std::vector<bool> attack_flags;
      for (const ScoreRow& row : eval_benign) {
        benign_flags.push_back(vote(row));
      }
      for (const ScoreRow& row : eval_attack) {
        attack_flags.push_back(vote(row));
      }
      EnsembleCell cell;
      cell.attack = kAttackNames[a];
      cell.defense = spec;
      cell.accuracy = evaluate_flags(benign_flags, attack_flags).accuracy();
      ensemble_cells.push_back(cell);
    }
  }

  // ---- human-readable grid ----------------------------------------------
  for (int m = 0; m < kDetectorCount; ++m) {
    std::vector<std::string> header = {std::string(kDetectors[m].name) +
                                       " acc/auc"};
    for (const std::string& spec : defense_specs) header.push_back(spec);
    report::Table table(header);
    for (int a = 0; a < kAttackCount; ++a) {
      std::vector<std::string> row = {kAttackNames[a]};
      for (std::size_t d = 0; d < defense_specs.size(); ++d) {
        const Cell& cell =
            cells[(d * kAttackCount + static_cast<std::size_t>(a)) *
                      kDetectorCount +
                  static_cast<std::size_t>(m)];
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.2f/%.2f", cell.accuracy,
                      cell.auc);
        row.push_back(buf);
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.render().c_str());
  }
  {
    std::vector<std::string> header = {"ensemble acc"};
    for (const std::string& spec : defense_specs) header.push_back(spec);
    report::Table table(header);
    for (int a = 0; a < kAttackCount; ++a) {
      std::vector<std::string> row = {kAttackNames[a]};
      for (std::size_t d = 0; d < defense_specs.size(); ++d) {
        char buf[64];
        std::snprintf(
            buf, sizeof(buf), "%.2f",
            ensemble_cells[d * kAttackCount + static_cast<std::size_t>(a)]
                .accuracy);
        row.push_back(buf);
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.render().c_str());
  }

  // ---- runtime entries (fixed geometry in BOTH modes: the 2x tripwire
  // compares quick runs against the committed full-run baseline) -----------
  std::vector<BenchResult> benchmarks;
  {
    const double budget_ms = opt.quick ? 25.0 : 150.0;
    data::SceneParams params = data::scene_params(data::Regime::A);
    params.min_side = params.max_side = 192;
    data::Rng rng(7);
    const Image scene = data::generate_scene(params, rng);
    data::Rng target_rng(8);
    const Image target = data::generate_target(48, 48, target_rng);
    const std::size_t px = scene.plane_size() * scene.channels();
    const Image plain =
        attack::craft_attack(scene, target, base_attack).image;

    auto bench = [&](const std::string& name,
                     const std::function<void()>& fn) {
      benchmarks.push_back(
          bench::micro::run_bench(name, px, budget_ms, fn));
      bench::micro::print_result(benchmarks.back());
    };
    for (const char* spec : {"squeeze4", "median3", "gauss0.8", "jpeg75"}) {
      const DefenseChain chain = DefenseChain::parse(spec);
      bench(std::string("matrix/defense/") + spec,
            [&] { (void)chain.apply(scene); });
    }
    bench("matrix/attack/offgrid_spread", [&] {
      (void)attack::spread_off_grid(plain, 48, 48, ScaleAlgo::Bilinear, 0.5);
    });
    const DefenseChain squeeze = DefenseChain::parse("squeeze4");
    ExperimentConfig bench_config;
    bench_config.target_width = bench_config.target_height = 48;
    const Battery bench_battery(bench_config);
    bench("matrix/score/defended_battery",
          [&] { (void)bench_battery.score(squeeze.apply(scene)); });
  }

  if (opt.json) {
    const std::string doc = matrix_json(cfg, opt.quick, defense_specs, cells,
                                        ensemble_cells, benchmarks);
    const std::string error = validate_matrix_json(doc);
    if (!error.empty()) {
      std::fprintf(stderr, "matrix_adaptive: refusing to write %s: %s\n",
                   opt.out.c_str(), error.c_str());
      return 1;
    }
    std::ofstream out(opt.out);
    if (!out) {
      std::fprintf(stderr, "matrix_adaptive: cannot write %s\n",
                   opt.out.c_str());
      return 1;
    }
    out << doc;
    out.close();
    std::printf("\nwrote %s (%zu cells, %zu benchmarks)\n", opt.out.c_str(),
                cells.size(), benchmarks.size());

    if (opt.manifest) {
      // Provenance sidecar, BENCH_matrix.json -> BENCH_matrix.manifest.json
      // (same convention as kernel_bench).
      bench::manifest::RunManifest manifest;
      manifest.binary = "matrix_adaptive";
      manifest.argv.assign(argv + 1, argv + argc);
      manifest.quick = opt.quick;
      manifest.seed = cfg.seed;
      manifest.image_width = cfg.target;
      manifest.image_height = cfg.target;
      std::string manifest_path = opt.out;
      const std::size_t dot = manifest_path.rfind(".json");
      manifest_path = dot == std::string::npos
                          ? manifest_path + ".manifest.json"
                          : manifest_path.substr(0, dot) + ".manifest.json";
      (void)bench::manifest::write_manifest(manifest, manifest_path);
    }
  }
  if (!opt.regress.empty() &&
      check_matrix_regressions(benchmarks, opt.regress) != 0) {
    return 1;
  }
  return 0;
}
