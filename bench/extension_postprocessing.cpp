// Extension: benign post-processing robustness. Real upload pipelines
// recompress (JPEG), denoise (blur) and perturb images before the CNN ever
// sees them. Two questions matter for deploying Decamouflage:
//
//   1. Does benign post-processing push BENIGN images over the detection
//      thresholds (spurious FRR)? It must not, or every recompressed
//      upload gets rejected.
//   2. Does the ATTACK survive the same post-processing? Empirically YES
//      for moderate recompression (the payload degrades gracefully, like
//      ordinary content) — recompression is NOT a defence; only
//      aggressive quality loss or blur dissolves the payload. Detection
//      therefore stays necessary even behind lossy upload pipelines.
#include "attack/scale_attack.h"
#include "bench_common.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "imaging/filter.h"
#include "imaging/jpeg_sim.h"
#include "metrics/mse.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.config.n_train == 50) args.config.n_train = 12;
  bench::print_banner("Extension: post-processing robustness", args);

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = args.config.min_side;
  params.max_side = args.config.max_side;

  ScalingDetectorConfig scaling_config;
  scaling_config.down_width = args.config.target_width;
  scaling_config.down_height = args.config.target_height;
  scaling_config.metric = Metric::MSE;
  const ScalingDetector scaling{scaling_config};
  const SteganalysisDetector steg{};

  struct Post {
    const char* label;
    Image (*apply)(const Image&);
  };
  const Post posts[] = {
      {"none", +[](const Image& img) { return img; }},
      {"JPEG q90", +[](const Image& img) { return jpeg_roundtrip(img, 90); }},
      {"JPEG q60", +[](const Image& img) { return jpeg_roundtrip(img, 60); }},
      {"JPEG q10", +[](const Image& img) { return jpeg_roundtrip(img, 10); }},
      {"gaussian blur 0.8",
       +[](const Image& img) { return gaussian_blur(img, 0.8); }},
  };

  attack::AttackOptions attack_options;
  attack_options.algo = args.config.white_box_algo;
  attack_options.eps = args.config.attack_eps;

  report::Table table({"Post-processing", "benign scaling MSE",
                       "benign CSP>1 rate", "attack payload MSE",
                       "payload survives?"});
  for (const Post& post : posts) {
    data::Rng scene_rng(args.config.seed ^ 0x90573ull);
    data::Rng target_rng(args.config.seed ^ 0x7A63E7ull);
    double benign_score = 0.0;
    int benign_csp_multi = 0;
    double payload_error = 0.0;
    for (int i = 0; i < args.config.n_train; ++i) {
      data::Rng sc = scene_rng.fork();
      data::Rng tc = target_rng.fork();
      const Image scene = generate_scene(params, sc);
      const Image target = data::generate_target(
          args.config.target_width, args.config.target_height, tc);
      const Image processed_benign = post.apply(scene);
      benign_score += scaling.score(processed_benign);
      if (steg.count_csp(processed_benign) > 1) ++benign_csp_multi;
      const attack::AttackResult result =
          attack::craft_attack(scene, target, attack_options);
      const Image processed_attack = post.apply(result.image);
      payload_error += mse(resize(processed_attack, args.config.target_width,
                                  args.config.target_height,
                                  attack_options.algo),
                           target);
      std::fprintf(stderr, "\r[postproc] %s %d/%d     ", post.label, i + 1,
                   args.config.n_train);
    }
    const double n = args.config.n_train;
    table.add_row({post.label, report::format_double(benign_score / n, 2),
                   report::format_percent(benign_csp_multi / n),
                   report::format_double(payload_error / n, 1),
                   payload_error / n < 100.0 ? "YES" : "no"});
  }
  std::fprintf(stderr, "\n");
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: benign scores stay orders of magnitude below the attack "
      "regime (no spurious rejections from recompression), while the "
      "attack payload survives moderate JPEG and only dissolves at "
      "aggressive quality loss — recompression alone is NOT a defence, "
      "which is why detection is needed even behind lossy pipelines.\n");
  return 0;
}
