// Reproduces Table 4 of the paper: the filtering detection method (2x2
// minimum filter) in the white-box setting. Expected shape: accuracy in
// the high 90s with SSIM slightly ahead of MSE (the paper reports 99.3%
// SSIM vs 98.6% MSE).
#include "bench_common.h"
#include "core/evaluation.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner("Table 4: filtering detection, white-box", args);
  const ExperimentData data = bench::load_data(args);

  report::Table table({"Metric", "Threshold", "Acc.", "Prec.", "Rec.", "FAR",
                       "FRR"});
  struct Row {
    const char* label;
    double ScoreRow::* member;
  };
  const Row rows[] = {{"MSE", &ScoreRow::filtering_mse},
                      {"SSIM", &ScoreRow::filtering_ssim}};
  for (const Row& row : rows) {
    const WhiteBoxResult wb = calibrate_white_box(
        ExperimentData::column(data.train_benign, row.member),
        ExperimentData::column(data.train_attack, row.member));
    const DetectionStats stats =
        evaluate(ExperimentData::column(data.eval_benign, row.member),
                 ExperimentData::column(data.eval_attack_white, row.member),
                 wb.calibration);
    table.add_row({row.label,
                   report::format_double(wb.calibration.threshold,
                                         row.member == &ScoreRow::filtering_mse
                                             ? 2
                                             : 4),
                   report::format_percent(stats.accuracy()),
                   report::format_percent(stats.precision()),
                   report::format_percent(stats.recall()),
                   report::format_percent(stats.far()),
                   report::format_percent(stats.frr())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reports: MSE 98.6%% acc (FAR 2.5%%, FRR 0.8%%); SSIM 99.3%% "
      "acc (FAR 1.3%%, FRR 0.2%%).\n");
  return 0;
}
