// Extension: the scale-ratio dimension. The attacker's footprint shrinks
// quadratically with the downscale ratio (bilinear at ratio r touches
// ~(2/r)^2 of the pixels), so larger source images make stealthier attacks
// — while every Decamouflage score keeps its orders-of-magnitude margin.
// This quantifies the trade the paper's intro sketches (800x600 sources vs
// 224 inputs) and shows detection quality is ratio-independent.
#include "attack/critical_pixels.h"
#include "attack/scale_attack.h"
#include "bench_common.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const int per_ratio = args.config.n_train == 50 ? 8 : args.config.n_train;
  bench::print_banner("Extension: attack stealth and detection vs scale ratio",
                      args);

  constexpr int kTarget = 64;
  const SteganalysisDetector steg{};
  FilteringDetectorConfig filtering_config;
  filtering_config.metric = Metric::SSIM;
  const FilteringDetector filtering{filtering_config};

  report::Table table({"Ratio", "Source px", "Critical fraction",
                       "mean SSIM(A,O)", "benign/attack scaling MSE",
                       "mean CSP"});
  for (const int ratio : {2, 3, 4, 6, 8}) {
    const int side = kTarget * ratio;
    data::SceneParams params = data::scene_params(data::Regime::A);
    params.min_side = params.max_side = side;
    ScalingDetectorConfig scaling_config;
    scaling_config.down_width = scaling_config.down_height = kTarget;
    scaling_config.metric = Metric::MSE;
    const ScalingDetector scaling{scaling_config};

    data::Rng scene_rng(args.config.seed ^ (0x9A710ull + ratio));
    data::Rng target_rng(args.config.seed ^ 0x7A63E7ull);
    double sum_ssim = 0, sum_benign = 0, sum_attack = 0, sum_csp = 0;
    for (int i = 0; i < per_ratio; ++i) {
      data::Rng sc = scene_rng.fork();
      data::Rng tc = target_rng.fork();
      const Image scene = generate_scene(params, sc);
      const Image target = data::generate_target(kTarget, kTarget, tc);
      attack::AttackOptions options;
      options.algo = args.config.white_box_algo;
      options.eps = args.config.attack_eps;
      const attack::AttackResult result =
          attack::craft_attack(scene, target, options);
      sum_ssim += result.report.source_ssim;
      sum_benign += scaling.score(scene);
      sum_attack += scaling.score(result.image);
      sum_csp += steg.score(result.image);
      std::fprintf(stderr, "\r[ratio %d] %d/%d   ", ratio, i + 1, per_ratio);
    }
    const double n = per_ratio;
    const double fraction = attack::critical_fraction(
        side, side, kTarget, kTarget, args.config.white_box_algo);
    char margin[64];
    std::snprintf(margin, sizeof(margin), "%.1f / %.0f", sum_benign / n,
                  sum_attack / n);
    table.add_row({std::to_string(ratio) + "x",
                   std::to_string(side) + "x" + std::to_string(side),
                   report::format_percent(fraction),
                   report::format_double(sum_ssim / n, 3), margin,
                   report::format_double(sum_csp / n, 1)});
  }
  std::fprintf(stderr, "\n");
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: SSIM(A,O) climbs with the ratio (stealthier attacks, smaller "
      "critical fraction) while the benign/attack scaling-MSE margin and "
      "the CSP count stay decisive at every ratio — detection does not "
      "depend on the attacker's geometry.\n");
  return 0;
}
