// Reproduces Table 7 of the paper: per-image run-time overhead of each
// detection method x metric, measured with google-benchmark on a fixed
// synthetic scene. Absolute milliseconds depend on the host CPU; the shape
// to reproduce is the ordering CSP << MSE variants << SSIM variants (the
// paper measures 3 ms / ~11 ms / ~137-174 ms on an i5-7500).
#include <benchmark/benchmark.h>

#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"

namespace {

using namespace decam;

// One representative input image, shared across all benchmarks: scenes in
// the paper's evaluation average several hundred pixels per side.
const Image& test_image() {
  static const Image image = [] {
    data::SceneParams params = data::scene_params(data::Regime::A);
    params.min_side = params.max_side = 448;
    data::Rng rng(7);
    return generate_scene(params, rng);
  }();
  return image;
}

core::ScalingDetectorConfig scaling_config(core::Metric metric) {
  core::ScalingDetectorConfig config;
  config.down_width = config.down_height = 224;
  config.metric = metric;
  return config;
}

void BM_ScalingMse(benchmark::State& state) {
  const core::ScalingDetector detector{scaling_config(core::Metric::MSE)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_ScalingMse)->Unit(benchmark::kMillisecond);

void BM_ScalingSsim(benchmark::State& state) {
  const core::ScalingDetector detector{scaling_config(core::Metric::SSIM)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_ScalingSsim)->Unit(benchmark::kMillisecond);

void BM_FilteringMse(benchmark::State& state) {
  core::FilteringDetectorConfig config;
  config.metric = core::Metric::MSE;
  const core::FilteringDetector detector{config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_FilteringMse)->Unit(benchmark::kMillisecond);

void BM_FilteringSsim(benchmark::State& state) {
  core::FilteringDetectorConfig config;
  config.metric = core::Metric::SSIM;
  const core::FilteringDetector detector{config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_FilteringSsim)->Unit(benchmark::kMillisecond);

void BM_SteganalysisCsp(benchmark::State& state) {
  const core::SteganalysisDetector detector{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_SteganalysisCsp)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
