// Reproduces Table 7 of the paper: per-image run-time overhead of each
// detection method x metric, measured with google-benchmark on a fixed
// synthetic scene. Absolute milliseconds depend on the host CPU; the shape
// to reproduce is the ordering CSP << MSE variants << SSIM variants (the
// paper measures 3 ms / ~11 ms / ~137-174 ms on an i5-7500).
//
// After the benchmarks the binary prints a per-kernel breakdown
// (context/round_trip, context/filter, context/spectrum) from the obs
// histograms the AnalysisContext records into, so a regression in one
// kernel is attributable instead of just inflating a detector total.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/analysis_context.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "obs/metrics.h"

namespace {

using namespace decam;

// One representative input image, shared across all benchmarks: scenes in
// the paper's evaluation average several hundred pixels per side.
const Image& test_image() {
  static const Image image = [] {
    data::SceneParams params = data::scene_params(data::Regime::A);
    params.min_side = params.max_side = 448;
    data::Rng rng(7);
    return generate_scene(params, rng);
  }();
  return image;
}

core::ScalingDetectorConfig scaling_config(core::Metric metric) {
  core::ScalingDetectorConfig config;
  config.down_width = config.down_height = 224;
  config.metric = metric;
  return config;
}

void BM_ScalingMse(benchmark::State& state) {
  const core::ScalingDetector detector{scaling_config(core::Metric::MSE)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_ScalingMse)->Unit(benchmark::kMillisecond);

void BM_ScalingSsim(benchmark::State& state) {
  const core::ScalingDetector detector{scaling_config(core::Metric::SSIM)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_ScalingSsim)->Unit(benchmark::kMillisecond);

void BM_FilteringMse(benchmark::State& state) {
  core::FilteringDetectorConfig config;
  config.metric = core::Metric::MSE;
  const core::FilteringDetector detector{config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_FilteringMse)->Unit(benchmark::kMillisecond);

void BM_FilteringSsim(benchmark::State& state) {
  core::FilteringDetectorConfig config;
  config.metric = core::Metric::SSIM;
  const core::FilteringDetector detector{config};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_FilteringSsim)->Unit(benchmark::kMillisecond);

void BM_SteganalysisCsp(benchmark::State& state) {
  const core::SteganalysisDetector detector{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.score(test_image()));
  }
}
BENCHMARK(BM_SteganalysisCsp)->Unit(benchmark::kMillisecond);

// Shared-intermediate build, the way Battery amortizes work across
// detectors. Each iteration times the three kernels into the context/*
// histograms reported after the run.
void BM_AnalysisContext(benchmark::State& state) {
  core::AnalysisContextSpec spec;
  spec.down_width = spec.down_height = 224;
  spec.filter_window = 2;
  spec.spectrum = true;
  for (auto _ : state) {
    core::AnalysisContext context(test_image(), spec);
    benchmark::DoNotOptimize(context.round_trip().at(0, 0, 0));
  }
}
BENCHMARK(BM_AnalysisContext)->Unit(benchmark::kMillisecond);

void print_kernel_breakdown() {
  const auto& registry = obs::MetricsRegistry::instance();
  std::printf("\nPer-kernel breakdown (AnalysisContext obs histograms):\n");
  std::printf("%-22s %8s %10s %10s %10s\n", "kernel", "count", "p50 ms",
              "p95 ms", "max ms");
  for (const char* name :
       {"context/round_trip", "context/filter", "context/spectrum"}) {
    const obs::Histogram* hist = registry.find_histogram(name);
    if (hist == nullptr || hist->count() == 0) {
      std::printf("%-22s %8s\n", name, "-");
      continue;
    }
    std::printf("%-22s %8llu %10.3f %10.3f %10.3f\n", name,
                static_cast<unsigned long long>(hist->count()),
                hist->percentile(50.0), hist->percentile(95.0),
                hist->max_ms());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_kernel_breakdown();
  return 0;
}
