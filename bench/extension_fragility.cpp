// Extension: attack fragility under benign geometric jitter. The payload
// of an image-scaling attack sits at exact sampling-grid positions, so a
// transformation that SHIFTS the grid — a 1-2 px crop — destroys it while
// barely affecting benign content. A horizontal flip, by contrast, maps
// the grid onto itself (our kernels are symmetric), so the payload
// survives in mirrored form: reflection is NOT a defence. Grid-shifting
// jitter is the zero-cost hardening step a service can run IN ADDITION to
// Decamouflage, and the same grid ownership is why attackers cannot
// jitter their way around the steganalysis detector.
#include "attack/scale_attack.h"
#include "bench_common.h"
#include "data/rng.h"
#include "data/synth.h"
#include "imaging/transform.h"
#include "metrics/mse.h"
#include "report/table.h"

using namespace decam;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.config.n_train == 50) args.config.n_train = 16;
  bench::print_banner("Extension: attack fragility under geometric jitter",
                      args);

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = args.config.min_side;
  params.max_side = args.config.max_side;

  struct Jitter {
    const char* label;
    Image (*apply)(const Image&);
  };
  const Jitter jitters[] = {
      {"none", +[](const Image& img) { return img; }},
      {"crop 1px (top-left)",
       +[](const Image& img) {
         return crop(img, 1, 1, img.width() - 1, img.height() - 1);
       }},
      {"crop 2px (centered)",
       +[](const Image& img) {
         return crop(img, 2, 2, img.width() - 4, img.height() - 4);
       }},
      {"horizontal flip", +[](const Image& img) {
         return flip_horizontal(img);
       }},
  };

  attack::AttackOptions options;
  options.algo = args.config.white_box_algo;
  options.eps = args.config.attack_eps;

  report::Table table({"Jitter", "mean MSE(scale(jitter(A)), T)",
                       "mean MSE(scale(jitter(O)), scale(O))",
                       "payload survives?"});
  for (const Jitter& jitter : jitters) {
    data::Rng scene_rng(args.config.seed ^ 0xF6A617ull);
    data::Rng target_rng(args.config.seed ^ 0x7A63E7ull);
    double attack_error = 0.0;
    double benign_shift = 0.0;
    for (int i = 0; i < args.config.n_train; ++i) {
      data::Rng sc = scene_rng.fork();
      data::Rng tc = target_rng.fork();
      const Image scene = generate_scene(params, sc);
      const Image target = data::generate_target(
          args.config.target_width, args.config.target_height, tc);
      const attack::AttackResult result =
          attack::craft_attack(scene, target, options);
      // For the flipped case, compare against the flipped target (the
      // content is mirrored, not destroyed, for benign images).
      const Image jittered_attack = jitter.apply(result.image);
      const Image attack_view =
          resize(jittered_attack, args.config.target_width,
                 args.config.target_height, options.algo);
      const bool is_flip = std::string(jitter.label) == "horizontal flip";
      attack_error += mse(attack_view,
                          is_flip ? flip_horizontal(target) : target);
      const Image benign_view = resize(scene, args.config.target_width,
                                       args.config.target_height,
                                       options.algo);
      const Image jittered_benign_view =
          resize(jitter.apply(scene), args.config.target_width,
                 args.config.target_height, options.algo);
      benign_shift += mse(is_flip ? flip_horizontal(jittered_benign_view)
                                  : jittered_benign_view,
                          benign_view);
      std::fprintf(stderr, "\r[fragility] %s %d/%d       ", jitter.label,
                   i + 1, args.config.n_train);
    }
    const double n = args.config.n_train;
    table.add_row({jitter.label, report::format_double(attack_error / n, 1),
                   report::format_double(benign_shift / n, 1),
                   attack_error / n < 100.0 ? "YES" : "no"});
  }
  std::fprintf(stderr, "\n");
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: a 1-2px crop wrecks the payload (huge MSE to the target) "
      "while the benign view shifts only slightly; the horizontal flip "
      "maps the symmetric sampling grid onto itself, so the payload "
      "survives mirrored — grid-SHIFTING jitter is the effective hardening "
      "step. The sampling grid belongs to the service, not the attacker.\n");
  return 0;
}
