// Ablation: detection (Decamouflage) vs prevention (Quiring et al.'s
// image reconstruction). The reconstruction defence cleanses exactly the
// pixels an attacker could control — neutralising every attack — but it
// rewrites those pixels in BENIGN images too, degrading what the model
// sees. This bench quantifies both sides of that trade, reproducing the
// paper's motivation (Section I) for a detection-only defence.
#include "attack/scale_attack.h"
#include "bench_common.h"
#include "core/reconstruction_defense.h"
#include "data/rng.h"
#include "data/synth.h"
#include "metrics/mse.h"
#include "metrics/ssim.h"
#include "report/table.h"

using namespace decam;

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.config.n_train == 50) args.config.n_train = 12;
  bench::print_banner(
      "Ablation: prevention via image reconstruction (Quiring et al.)",
      args);

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = args.config.min_side;
  params.max_side = args.config.max_side;

  core::ReconstructionConfig defense;
  defense.target_width = args.config.target_width;
  defense.target_height = args.config.target_height;
  defense.algo = args.config.white_box_algo;

  attack::AttackOptions attack_options;
  attack_options.algo = args.config.white_box_algo;
  attack_options.eps = args.config.attack_eps;

  data::Rng scene_rng(args.config.seed ^ 0x9E4A71ull);
  data::Rng target_rng(args.config.seed ^ 0x7A63E7ull);
  double attack_payload_before = 0.0;  // MSE(scale(A), T) without defence
  double attack_payload_after = 0.0;   // ... with defence
  double benign_view_shift = 0.0;      // MSE(scale(O), scale(defend(O)))
  double benign_image_ssim = 0.0;      // SSIM(O, defend(O))
  for (int i = 0; i < args.config.n_train; ++i) {
    data::Rng sc = scene_rng.fork();
    data::Rng tc = target_rng.fork();
    const Image scene = generate_scene(params, sc);
    const Image target = data::generate_target(args.config.target_width,
                                               args.config.target_height, tc);
    const attack::AttackResult result =
        attack::craft_attack(scene, target, attack_options);

    const Image defended_attack =
        core::reconstruct_critical_pixels(result.image, defense);
    attack_payload_before +=
        mse(resize(result.image, defense.target_width, defense.target_height,
                   defense.algo),
            target);
    attack_payload_after +=
        mse(resize(defended_attack, defense.target_width,
                   defense.target_height, defense.algo),
            target);

    const Image defended_benign =
        core::reconstruct_critical_pixels(scene, defense);
    benign_view_shift +=
        mse(resize(scene, defense.target_width, defense.target_height,
                   defense.algo),
            resize(defended_benign, defense.target_width,
                   defense.target_height, defense.algo));
    benign_image_ssim += ssim(scene, defended_benign);
    std::fprintf(stderr, "\r[prevention] %d/%d", i + 1, args.config.n_train);
  }
  std::fprintf(stderr, "\n");

  const double n = args.config.n_train;
  report::Table table({"Quantity", "Value", "Reading"});
  table.add_row({"MSE(scale(A), T), no defence",
                 report::format_double(attack_payload_before / n, 1),
                 "attack works"});
  table.add_row({"MSE(scale(A), T), reconstructed",
                 report::format_double(attack_payload_after / n, 1),
                 "payload destroyed"});
  table.add_row({"MSE(scale(O), scale(defend(O)))",
                 report::format_double(benign_view_shift / n, 1),
                 "benign model input CHANGED"});
  table.add_row({"SSIM(O, defend(O))",
                 report::format_double(benign_image_ssim / n, 4),
                 "benign image quality cost"});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Shape: reconstruction prevents the attack but taxes every benign "
      "input (the paper's Section I critique); Decamouflage detects with "
      "zero modification of accepted images.\n");
  return 0;
}
