// Reproduces Table 5 of the paper: the filtering detection method in the
// black-box setting (percentile thresholds from benign scores only).
// Expected shape: accuracy ~98-99%, FRR tracking the percentile, SSIM the
// recommended metric.
#include "bench_common.h"
#include "core/evaluation.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner("Table 5: filtering detection, black-box", args);
  const ExperimentData data = bench::load_data(args);

  report::Table table({"Metric", "Percentile", "Acc.", "Prec.", "Rec.",
                       "FAR", "FRR", "Mean", "STD"});
  struct Row {
    const char* label;
    double ScoreRow::* member;
    Polarity polarity;
  };
  const Row rows[] = {
      {"MSE", &ScoreRow::filtering_mse, Polarity::HighIsAttack},
      {"SSIM", &ScoreRow::filtering_ssim, Polarity::LowIsAttack}};
  for (const Row& row : rows) {
    const auto benign_train =
        ExperimentData::column(data.train_benign, row.member);
    const ScoreStats stats_train = score_stats(benign_train);
    for (double percentile : {1.0, 2.0, 3.0}) {
      const Calibration calibration =
          calibrate_black_box(benign_train, percentile, row.polarity);
      const DetectionStats stats =
          evaluate(ExperimentData::column(data.eval_benign, row.member),
                   ExperimentData::column(data.eval_attack_black, row.member),
                   calibration);
      const bool first = percentile == 1.0;
      const int decimals =
          row.polarity == Polarity::HighIsAttack ? 1 : 3;
      table.add_row({first ? row.label : "",
                     report::format_percent(percentile / 100.0, 0),
                     report::format_percent(stats.accuracy()),
                     report::format_percent(stats.precision()),
                     report::format_percent(stats.recall()),
                     report::format_percent(stats.far()),
                     report::format_percent(stats.frr()),
                     first ? report::format_double(stats_train.mean, decimals)
                           : "",
                     first ? report::format_double(stats_train.stddev,
                                                   decimals)
                           : ""});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reports: best config SSIM at 1%% percentile, 99.2%% acc "
      "(FAR 0.6%%, FRR 1.0%%); benign filtering MSE mean 1952.3 std 1543.3 "
      "on NeurIPS-2017 (absolute values are dataset-specific).\n");
  return 0;
}
