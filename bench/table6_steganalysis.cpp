// Reproduces Table 6 of the paper: the steganalysis (CSP) detection
// method. The white-box rows confirm that the fixed threshold CSP >= 2
// emerges from the data; the black-box row demonstrates the paper's
// observation that the SAME fixed threshold needs no calibration at all.
#include "bench_common.h"
#include "core/evaluation.h"
#include "report/table.h"

using namespace decam;
using namespace decam::core;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_banner("Table 6: steganalysis detection (CSP)", args);
  const ExperimentData data = bench::load_data(args);

  // The paper fixes the threshold at 2 centered spectrum points; we also
  // show the white-box search lands on (or next to) the same value.
  const WhiteBoxResult wb = calibrate_white_box(
      ExperimentData::column(data.train_benign, &ScoreRow::csp),
      ExperimentData::column(data.train_attack, &ScoreRow::csp));
  std::printf("White-box search suggests threshold %.1f (polarity: %s).\n\n",
              wb.calibration.threshold,
              wb.calibration.polarity == Polarity::HighIsAttack
                  ? "high-is-attack"
                  : "low-is-attack");

  const Calibration fixed{2.0, Polarity::HighIsAttack, 0.0};
  report::Table table({"Setting", "Threshold", "Acc.", "Prec.", "Rec.",
                       "FAR", "FRR"});
  struct Row {
    const char* label;
    const std::vector<ScoreRow>* benign;
    const std::vector<ScoreRow>* attack;
  };
  const Row rows[] = {
      {"calibration set", &data.train_benign, &data.train_attack},
      {"unseen, white-box attacks", &data.eval_benign,
       &data.eval_attack_white},
      {"unseen, black-box attacks", &data.eval_benign,
       &data.eval_attack_black}};
  for (const Row& row : rows) {
    const DetectionStats stats =
        evaluate(ExperimentData::column(*row.benign, &ScoreRow::csp),
                 ExperimentData::column(*row.attack, &ScoreRow::csp), fixed);
    table.add_row({row.label, "CSP >= 2",
                   report::format_percent(stats.accuracy()),
                   report::format_percent(stats.precision()),
                   report::format_percent(stats.recall()),
                   report::format_percent(stats.far()),
                   report::format_percent(stats.frr())});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reports: 98.9%% acc with FAR 0.3%% and FRR 1.7%%, identical "
      "in the white-box and black-box settings because the threshold is "
      "fixed at 2.\n");
  return 0;
}
