// Microbenchmarks for the hot imaging/signal kernels every detector funnels
// through: separable resize (all five algorithms, up and down), the rank
// filters of the filtering detector, box/Gaussian blur, the FFT
// log-spectrum, and one full Battery::score. Each benchmark reports the
// minimum iteration time normalised to ns/pixel and MP/s over a fixed
// synthetic input (seed 7), so numbers are comparable across commits and
// hosts of the same class.
//
//   kernel_bench [--quick] [--json] [--out FILE] [--filter SUBSTR]
//                [--regress-against FILE]
//   kernel_bench --validate FILE
//
// --json writes the `decam-kernel-bench-v1` document (default
// BENCH_kernels.json — run from the repo root to refresh the committed perf
// trail) and re-reads it through the schema validator before exiting, so a
// malformed file can never be written silently. --validate checks an
// existing file and exits non-zero on violation (the bench_smoke ctest).
//
// --regress-against compares the run just measured with a baseline document
// (normally the committed BENCH_kernels.json) and exits non-zero if any
// benchmark present in both runs is more than 2x slower in ns/pixel. The
// factor is deliberately loose: it is a tripwire for accidental algorithmic
// regressions (a dropped fast path, an O(k) loop reappearing), not a
// noise-level performance gate, and it must tolerate the quick run's
// smaller inputs and a different host class. Spectrum benchmarks therefore
// use the same fixed geometries in quick and full modes — they are the
// entries whose regime (radix-4 vs Bluestein) depends on the exact size.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/simd.h"
#include "core/pipeline.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "imaging/filter.h"
#include "imaging/scale.h"
#include "metrics/fused.h"
#include "metrics/histogram.h"
#include "signal/spectrum.h"

namespace {

using namespace decam;
using bench::micro::BenchResult;
using bench::micro::run_bench;

struct Options {
  bool quick = false;
  bool json = false;
  std::string out = "BENCH_kernels.json";
  std::string filter;
  std::string validate;  // non-empty: validate this file and exit
  std::string regress;   // non-empty: compare against this baseline JSON
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      opt.filter = argv[++i];
    } else if (std::strcmp(argv[i], "--validate") == 0 && i + 1 < argc) {
      opt.validate = argv[++i];
    } else if (std::strcmp(argv[i], "--regress-against") == 0 &&
               i + 1 < argc) {
      opt.regress = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--out FILE] "
                   "[--filter SUBSTR] [--regress-against FILE] | "
                   "--validate FILE\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.validate.empty()) {
    return bench::micro::validate_file("kernel_bench", opt.validate);
  }

  // Fixed synthetic inputs. `big` plays the scanned image, `small` the CNN
  // input geometry it round-trips through.
  const int side = opt.quick ? 192 : 512;
  const int cnn = opt.quick ? 96 : 224;
  const double budget_ms = opt.quick ? 40.0 : 300.0;

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = side;
  data::Rng rng(7);
  const Image big = generate_scene(params, rng);
  const Image small = resize(big, cnn, cnn, ScaleAlgo::Bilinear);
  const std::size_t big_px = big.plane_size() * big.channels();

  std::printf("kernel_bench: %dx%dx%d scene (seed 7)%s\n\n", big.width(),
              big.height(), big.channels(), opt.quick ? " [quick]" : "");

  std::vector<BenchResult> results;
  auto bench = [&](const std::string& name, std::size_t pixels,
                   const std::function<void()>& fn) {
    if (!opt.filter.empty() && name.find(opt.filter) == std::string::npos) {
      return;
    }
    results.push_back(run_bench(name, pixels, budget_ms, fn));
    bench::micro::print_result(results.back());
  };
  // Same benchmark with the scalar SimdOps table forced, so the dispatch
  // win of each vectorized kernel is measurable next to its default entry
  // (which runs whatever the host resolved — see the simd/dispatch gauge).
  auto bench_scalar = [&](const std::string& name, std::size_t pixels,
                          const std::function<void()>& fn) {
    const simd::Isa prev = simd::set_active_isa(simd::Isa::Scalar);
    bench(name + "/scalar", pixels, fn);
    simd::set_active_isa(prev);
  };

  // --- separable resize, every algorithm, down and up ---------------------
  for (const ScaleAlgo algo :
       {ScaleAlgo::Nearest, ScaleAlgo::Bilinear, ScaleAlgo::Bicubic,
        ScaleAlgo::Area, ScaleAlgo::Lanczos4}) {
    const std::string tag = to_string(algo);
    bench("resize/" + tag + "/down", big_px,
          [&] { (void)resize(big, cnn, cnn, algo); });
    bench("resize/" + tag + "/up", big_px,
          [&] { (void)resize(small, side, side, algo); });
  }
  bench("resize/bicubic/round_trip", big_px, [&] {
    (void)scale_round_trip(big, cnn, cnn, ScaleAlgo::Bicubic,
                           ScaleAlgo::Bicubic);
  });
  bench_scalar("resize/bicubic/up", big_px,
               [&] { (void)resize(small, side, side, ScaleAlgo::Bicubic); });

  // --- rank filters (the filtering detector's hot loop) -------------------
  for (const int k : {2, 3, 5, 9}) {
    bench("rank/min/k" + std::to_string(k), big_px,
          [&, k] { (void)rank_filter(big, k, RankOp::Min); });
  }
  bench("rank/max/k9", big_px, [&] { (void)rank_filter(big, 9, RankOp::Max); });
  // The median entries run on the 8-bit quantised scene — the decoded-image
  // grid every real scan presents, i.e. the Perreault–Hébert histogram
  // path. The /grid16 and /exact variants pin the other two classifier
  // routes on the same geometry: half-stepping the u8 grid lands on i/256
  // values, and a single 0.3f nudge (not representable as i/256) pushes
  // the scene off both grids onto the sorted-window fallback. The raw
  // float scene is NOT a valid Exact input — generate_scene emits
  // integral values, which classify as Grid8.
  const Image big_u8 =
      Image::from_u8(big.to_u8(), big.width(), big.height(), big.channels());
  Image big_half = big_u8;
  big_half *= 0.5f;
  Image big_off = big_u8;
  big_off.row(0, 0).data()[0] += 0.3f;
  for (const int k : {3, 5, 7, 9, 15}) {
    bench("rank/median/k" + std::to_string(k), big_px,
          [&, k] { (void)rank_filter(big_u8, k, RankOp::Median); });
  }
  bench_scalar("rank/median/k9", big_px,
               [&] { (void)rank_filter(big_u8, 9, RankOp::Median); });
  bench("rank/median/k9/grid16", big_px,
        [&] { (void)rank_filter(big_half, 9, RankOp::Median); });
  bench("rank/median/k9/exact", big_px,
        [&] { (void)rank_filter(big_off, 9, RankOp::Median); });

  // --- blurs (dataset generator / robustness experiments) -----------------
  for (const int k : {3, 9, 25}) {
    bench("blur/box/k" + std::to_string(k), big_px,
          [&, k] { (void)box_blur(big, k); });
  }
  bench("blur/gaussian/s1.5", big_px, [&] { (void)gaussian_blur(big, 1.5); });
  bench_scalar("blur/gaussian/s1.5", big_px,
               [&] { (void)gaussian_blur(big, 1.5); });

  // --- FFT log-spectrum (steganalysis detection) ---------------------------
  // Fixed geometries in both modes: the FFT regime (planned radix-4 vs
  // Bluestein) depends on the exact side length, so quick-mode scaling would
  // silently benchmark a different code path (192 is not a power of two) and
  // break the --regress-against comparison with the committed full-run
  // baseline. Sizes cover the planned real-input pow2 path at two scales,
  // the CNN input geometry (224 = 2^5 * 7, mixed-composite Bluestein), and a
  // large odd Bluestein side.
  {
    const Image pow2_512 = resize(big, 512, 512, ScaleAlgo::Bilinear);
    const Image pow2_256 = resize(big, 256, 256, ScaleAlgo::Bilinear);
    const Image cnn_224 = resize(big, 224, 224, ScaleAlgo::Bilinear);
    const Image odd_450 = resize(big, 450, 450, ScaleAlgo::Bilinear);
    bench("spectrum/pow2", pow2_512.plane_size(),
          [&] { (void)centered_log_spectrum(pow2_512); });
    bench("spectrum/pow2_256", pow2_256.plane_size(),
          [&] { (void)centered_log_spectrum(pow2_256); });
    bench("spectrum/cnn224", cnn_224.plane_size(),
          [&] { (void)centered_log_spectrum(cnn_224); });
    bench("spectrum/bluestein", odd_450.plane_size(),
          [&] { (void)centered_log_spectrum(odd_450); });
  }

  // --- one full battery score (everything a `decamctl scan` pays) ---------
  {
    core::ExperimentConfig config;
    config.target_width = config.target_height = cnn;
    const core::Battery battery(config);
    bench("battery/score", big_px, [&] { (void)battery.score(big); });

    // The same score on a prebuilt context isolates the metric reductions
    // from intermediate construction (round trip, filter, spectrum).
    const core::AnalysisContext context(big, battery.context_spec());
    bench("battery/score_fused", big_px,
          [&] { (void)battery.score(context); });

    // Per-stage breakdown over the same prebuilt intermediates, so a
    // regression in one stage is attributable without re-deriving it from
    // battery/score deltas.
    bench("battery/pair_stats/scaling", big_px, [&] {
      (void)pair_stats(big, context.round_trip());
    });
    bench("battery/pair_stats/filtering", big_px, [&] {
      (void)pair_stats(big, context.filtered());
    });
    bench_scalar("battery/pair_stats/filtering", big_px, [&] {
      (void)pair_stats(big, context.filtered());
    });
    const core::SteganalysisDetector steg{core::SteganalysisDetectorConfig{}};
    bench("battery/steganalysis/csp", big_px,
          [&] { (void)steg.count_csp_in(context.spectrum()); });
    bench("battery/histogram", big_px, [&] {
      (void)histogram_intersection(color_histogram(big, 32),
                                   color_histogram(context.downscaled(), 32));
    });
  }

  if (opt.json) {
    const std::string doc = bench::micro::bench_json(results, opt.quick);
    const std::string error = bench::micro::validate_bench_json(doc);
    if (!error.empty()) {
      std::fprintf(stderr, "kernel_bench: refusing to write %s: %s\n",
                   opt.out.c_str(), error.c_str());
      return 1;
    }
    std::ofstream out(opt.out);
    if (!out) {
      std::fprintf(stderr, "kernel_bench: cannot write %s\n",
                   opt.out.c_str());
      return 1;
    }
    out << doc;
    out.close();
    std::printf("\nwrote %s (%zu benchmarks)\n", opt.out.c_str(),
                results.size());

    // Provenance sidecar: BENCH_foo.json -> BENCH_foo.manifest.json, so a
    // refreshed baseline carries the build flavour and metric snapshot of
    // the run that produced it.
    bench::manifest::RunManifest manifest;
    manifest.binary = "kernel_bench";
    manifest.argv.assign(argv + 1, argv + argc);
    manifest.quick = opt.quick;
    manifest.seed = 7;
    manifest.image_width = big.width();
    manifest.image_height = big.height();
    std::string manifest_path = opt.out;
    const std::size_t dot = manifest_path.rfind(".json");
    manifest_path = dot == std::string::npos
                        ? manifest_path + ".manifest.json"
                        : manifest_path.substr(0, dot) + ".manifest.json";
    (void)bench::manifest::write_manifest(manifest, manifest_path);
  }
  if (!opt.regress.empty() &&
      bench::micro::check_regressions("kernel_bench", results, opt.regress) !=
          0) {
    return 1;
  }
  return 0;
}
