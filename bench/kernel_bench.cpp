// Microbenchmarks for the hot imaging/signal kernels every detector funnels
// through: separable resize (all five algorithms, up and down), the rank
// filters of the filtering detector, box/Gaussian blur, the FFT
// log-spectrum, and one full Battery::score. Each benchmark reports the
// minimum iteration time normalised to ns/pixel and MP/s over a fixed
// synthetic input (seed 7), so numbers are comparable across commits and
// hosts of the same class.
//
//   kernel_bench [--quick] [--json] [--out FILE] [--filter SUBSTR]
//   kernel_bench --validate FILE
//
// --json writes the `decam-kernel-bench-v1` document (default
// BENCH_kernels.json — run from the repo root to refresh the committed perf
// trail) and re-reads it through the schema validator before exiting, so a
// malformed file can never be written silently. --validate checks an
// existing file and exits non-zero on violation (the bench_smoke ctest).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "data/rng.h"
#include "data/synth.h"
#include "imaging/filter.h"
#include "imaging/scale.h"
#include "signal/spectrum.h"

namespace {

using namespace decam;
using bench::micro::BenchResult;
using bench::micro::run_bench;

struct Options {
  bool quick = false;
  bool json = false;
  std::string out = "BENCH_kernels.json";
  std::string filter;
  std::string validate;  // non-empty: validate this file and exit
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt.out = argv[++i];
    } else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc) {
      opt.filter = argv[++i];
    } else if (std::strcmp(argv[i], "--validate") == 0 && i + 1 < argc) {
      opt.validate = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json] [--out FILE] "
                   "[--filter SUBSTR] | --validate FILE\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return opt;
}

int validate_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "kernel_bench: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string error = bench::micro::validate_bench_json(text.str());
  if (!error.empty()) {
    std::fprintf(stderr, "kernel_bench: %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("%s: valid decam-kernel-bench-v1 document\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.validate.empty()) return validate_file(opt.validate);

  // Fixed synthetic inputs. `big` plays the scanned image, `small` the CNN
  // input geometry it round-trips through.
  const int side = opt.quick ? 192 : 512;
  const int cnn = opt.quick ? 96 : 224;
  const double budget_ms = opt.quick ? 40.0 : 300.0;

  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = side;
  data::Rng rng(7);
  const Image big = generate_scene(params, rng);
  const Image small = resize(big, cnn, cnn, ScaleAlgo::Bilinear);
  const std::size_t big_px = big.plane_size() * big.channels();

  std::printf("kernel_bench: %dx%dx%d scene (seed 7)%s\n\n", big.width(),
              big.height(), big.channels(), opt.quick ? " [quick]" : "");

  std::vector<BenchResult> results;
  auto bench = [&](const std::string& name, std::size_t pixels,
                   const std::function<void()>& fn) {
    if (!opt.filter.empty() && name.find(opt.filter) == std::string::npos) {
      return;
    }
    results.push_back(run_bench(name, pixels, budget_ms, fn));
    bench::micro::print_result(results.back());
  };

  // --- separable resize, every algorithm, down and up ---------------------
  for (const ScaleAlgo algo :
       {ScaleAlgo::Nearest, ScaleAlgo::Bilinear, ScaleAlgo::Bicubic,
        ScaleAlgo::Area, ScaleAlgo::Lanczos4}) {
    const std::string tag = to_string(algo);
    bench("resize/" + tag + "/down", big_px,
          [&] { (void)resize(big, cnn, cnn, algo); });
    bench("resize/" + tag + "/up", big_px,
          [&] { (void)resize(small, side, side, algo); });
  }
  bench("resize/bicubic/round_trip", big_px, [&] {
    (void)scale_round_trip(big, cnn, cnn, ScaleAlgo::Bicubic,
                           ScaleAlgo::Bicubic);
  });

  // --- rank filters (the filtering detector's hot loop) -------------------
  for (const int k : {2, 3, 5, 9}) {
    bench("rank/min/k" + std::to_string(k), big_px,
          [&, k] { (void)rank_filter(big, k, RankOp::Min); });
  }
  bench("rank/max/k9", big_px, [&] { (void)rank_filter(big, 9, RankOp::Max); });
  for (const int k : {3, 5, 9}) {
    bench("rank/median/k" + std::to_string(k), big_px,
          [&, k] { (void)rank_filter(big, k, RankOp::Median); });
  }

  // --- blurs (dataset generator / robustness experiments) -----------------
  for (const int k : {3, 9, 25}) {
    bench("blur/box/k" + std::to_string(k), big_px,
          [&, k] { (void)box_blur(big, k); });
  }
  bench("blur/gaussian/s1.5", big_px, [&] { (void)gaussian_blur(big, 1.5); });

  // --- FFT log-spectrum (steganalysis detection) ---------------------------
  bench("spectrum/pow2", big.plane_size(), [&] {
    (void)centered_log_spectrum(big);  // 512/192: radix-2 fast path
  });
  {
    const int odd = opt.quick ? 150 : 450;  // non-pow2: Bluestein path
    const Image awkward = resize(big, odd, odd, ScaleAlgo::Bilinear);
    bench("spectrum/bluestein", awkward.plane_size(),
          [&] { (void)centered_log_spectrum(awkward); });
  }

  // --- one full battery score (everything a `decamctl scan` pays) ---------
  {
    core::ExperimentConfig config;
    config.target_width = config.target_height = cnn;
    const core::Battery battery(config);
    bench("battery/score", big_px, [&] { (void)battery.score(big); });
  }

  if (opt.json) {
    const std::string doc = bench::micro::bench_json(results, opt.quick);
    const std::string error = bench::micro::validate_bench_json(doc);
    if (!error.empty()) {
      std::fprintf(stderr, "kernel_bench: refusing to write %s: %s\n",
                   opt.out.c_str(), error.c_str());
      return 1;
    }
    std::ofstream out(opt.out);
    if (!out) {
      std::fprintf(stderr, "kernel_bench: cannot write %s\n",
                   opt.out.c_str());
      return 1;
    }
    out << doc;
    out.close();
    std::printf("\nwrote %s (%zu benchmarks)\n", opt.out.c_str(),
                results.size());
  }
  return 0;
}
