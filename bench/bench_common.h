// Shared scaffolding for the table/figure reproduction binaries.
//
// Every bench runs the same two-stage experiment through
// core::run_experiment (cached on disk, so the first binary in a `for b in
// build/bench/*` sweep pays the dataset/attack generation cost and the
// rest reuse it), then prints its table or figure from the cached scores.
//
// Flags (all optional):
//   --n <count>      images per class per split (default 50)
//   --seed <u64>     dataset seed (default 42)
//   --quick          miniature run (n=12, small scenes) for smoke tests
//   --no-cache       recompute instead of using the score cache
//   --threads <N>    worker-pool size (default: DECAM_THREADS env or
//                    hardware concurrency); scores are bit-identical at
//                    any thread count
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/calibration.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "runtime/thread_pool.h"

namespace decam::bench {

struct BenchArgs {
  core::ExperimentConfig config;
  bool use_cache = true;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  args.config.n_train = 50;
  args.config.n_eval = 50;
  args.config.target_width = 96;
  args.config.target_height = 96;
  args.config.min_side = 256;
  args.config.max_side = 512;
  args.config.seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      args.config.n_train = args.config.n_eval = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.config.n_train = args.config.n_eval = 12;
      args.config.target_width = args.config.target_height = 32;
      args.config.min_side = 128;
      args.config.max_side = 192;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      args.use_cache = false;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        std::exit(2);
      }
      runtime::set_thread_count(threads);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n N] [--seed S] [--quick] [--no-cache] "
                   "[--threads N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

inline core::ExperimentData load_data(const BenchArgs& args) {
  return core::run_experiment(
      args.config,
      args.use_cache ? core::default_cache_dir() : std::filesystem::path{});
}

inline void print_banner(const char* title, const BenchArgs& args) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "config: n_train=%d n_eval=%d scenes=%d-%dpx target=%dx%d "
      "pipeline=%s eps=%.1f seed=%llu\n\n",
      args.config.n_train, args.config.n_eval, args.config.min_side,
      args.config.max_side, args.config.target_width,
      args.config.target_height, to_string(args.config.white_box_algo),
      args.config.attack_eps,
      static_cast<unsigned long long>(args.config.seed));
}

}  // namespace decam::bench
