// Shared scaffolding for the table/figure reproduction binaries.
//
// Every bench runs the same two-stage experiment through
// core::run_experiment (cached on disk, so the first binary in a `for b in
// build/bench/*` sweep pays the dataset/attack generation cost and the
// rest reuse it), then prints its table or figure from the cached scores.
//
// Flags (all optional):
//   --n <count>      images per class per split (default 50)
//   --seed <u64>     dataset seed (default 42)
//   --quick          miniature run (n=12, small scenes) for smoke tests
//   --no-cache       recompute instead of using the score cache
//   --threads <N>    worker-pool size (default: DECAM_THREADS env or
//                    hardware concurrency); scores are bit-identical at
//                    any thread count
#pragma once

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/calibration.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "runtime/thread_pool.h"

namespace decam::bench {

struct BenchArgs {
  core::ExperimentConfig config;
  bool use_cache = true;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  args.config.n_train = 50;
  args.config.n_eval = 50;
  args.config.target_width = 96;
  args.config.target_height = 96;
  args.config.min_side = 256;
  args.config.max_side = 512;
  args.config.seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      args.config.n_train = args.config.n_eval = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.config.n_train = args.config.n_eval = 12;
      args.config.target_width = args.config.target_height = 32;
      args.config.min_side = 128;
      args.config.max_side = 192;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      args.use_cache = false;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        std::exit(2);
      }
      runtime::set_thread_count(threads);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n N] [--seed S] [--quick] [--no-cache] "
                   "[--threads N]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

inline core::ExperimentData load_data(const BenchArgs& args) {
  return core::run_experiment(
      args.config,
      args.use_cache ? core::default_cache_dir() : std::filesystem::path{});
}

inline void print_banner(const char* title, const BenchArgs& args) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "config: n_train=%d n_eval=%d scenes=%d-%dpx target=%dx%d "
      "pipeline=%s eps=%.1f seed=%llu\n\n",
      args.config.n_train, args.config.n_eval, args.config.min_side,
      args.config.max_side, args.config.target_width,
      args.config.target_height, to_string(args.config.white_box_algo),
      args.config.attack_eps,
      static_cast<unsigned long long>(args.config.seed));
}

}  // namespace decam::bench

// ---------------------------------------------------------------------------
// Micro-benchmark scaffolding (bench/kernel_bench and future perf benches).
//
// Each benchmark is a closure timed with steady_clock over enough iterations
// to fill a small time budget; the *minimum* iteration time is reported (the
// usual micro-bench convention: the minimum is the run least disturbed by
// the OS). Results normalise to ns/pixel and MP/s over a caller-declared
// pixel count so numbers are comparable across image geometries, and can be
// serialised to a stable JSON document (schema `decam-kernel-bench-v1`)
// that downstream tooling validates with validate_bench_json().
// ---------------------------------------------------------------------------

namespace decam::bench::micro {

struct BenchResult {
  std::string name;
  std::size_t pixels = 0;   // work size the timings normalise over
  double ms_per_iter = 0.0; // minimum observed iteration time
  double ns_per_pixel = 0.0;
  double mpix_per_s = 0.0;
  int iters = 0;
};

/// Times `fn` until `budget_ms` of measured work has accumulated (at least
/// `min_iters` runs), returning the minimum-iteration normalisation.
inline BenchResult run_bench(const std::string& name, std::size_t pixels,
                             double budget_ms, const std::function<void()>& fn,
                             int min_iters = 3) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up: first-touch allocations, table caches, branch training
  BenchResult result;
  result.name = name;
  result.pixels = pixels;
  double total_ms = 0.0;
  double best_ms = std::numeric_limits<double>::infinity();
  int iters = 0;
  while (iters < min_iters || total_ms < budget_ms) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best_ms = std::min(best_ms, ms);
    total_ms += ms;
    ++iters;
    if (iters >= 1000) break;  // fast kernels: enough samples
  }
  result.ms_per_iter = best_ms;
  result.iters = iters;
  const double ns = best_ms * 1e6;
  result.ns_per_pixel = ns / static_cast<double>(pixels);
  result.mpix_per_s =
      static_cast<double>(pixels) / (best_ms * 1e-3) / 1e6;
  return result;
}

inline void print_result(const BenchResult& r) {
  std::printf("%-34s %10.3f ms  %8.3f ns/px  %9.1f MP/s  (x%d)\n",
              r.name.c_str(), r.ms_per_iter, r.ns_per_pixel, r.mpix_per_s,
              r.iters);
}

/// Serialises results as the `decam-kernel-bench-v1` JSON document.
inline std::string bench_json(const std::vector<BenchResult>& results,
                              bool quick) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"decam-kernel-bench-v1\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"pixels\": %zu, "
                  "\"ms_per_iter\": %.6f, \"ns_per_pixel\": %.6f, "
                  "\"mpix_per_s\": %.3f, \"iters\": %d}%s\n",
                  r.name.c_str(), r.pixels, r.ms_per_iter, r.ns_per_pixel,
                  r.mpix_per_s, r.iters,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  return out.str();
}

// ------------------------------------------------------------------ JSON --
// Minimal JSON reader for schema validation: parses objects/arrays/strings/
// numbers/bools into a tiny DOM. Not a general-purpose parser (no \uXXXX,
// no nesting limits) — just enough to hold the bench document to account.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parse_string(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonValue::Kind::Null;
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    return consume('"');
  }
  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = JsonValue::Kind::Number;
    out.number = std::atof(std::string(text_.substr(start, pos_ - start)).c_str());
    return true;
  }
  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Validates a `decam-kernel-bench-v1` document: schema marker, non-empty
/// benchmark array, and per-entry name/pixels/throughput sanity. Returns an
/// empty string on success, else a description of the first violation.
inline std::string validate_bench_json(std::string_view text) {
  JsonValue root;
  if (!JsonParser(text).parse(root)) return "not parseable as JSON";
  if (root.kind != JsonValue::Kind::Object) return "root is not an object";
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String ||
      schema->string != "decam-kernel-bench-v1") {
    return "missing/wrong schema marker";
  }
  const JsonValue* quick = root.find("quick");
  if (quick == nullptr || quick->kind != JsonValue::Kind::Bool) {
    return "missing boolean 'quick'";
  }
  const JsonValue* benches = root.find("benchmarks");
  if (benches == nullptr || benches->kind != JsonValue::Kind::Array) {
    return "missing 'benchmarks' array";
  }
  if (benches->array.empty()) return "'benchmarks' is empty";
  for (const JsonValue& b : benches->array) {
    if (b.kind != JsonValue::Kind::Object) return "benchmark not an object";
    const JsonValue* name = b.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::String ||
        name->string.empty()) {
      return "benchmark without a name";
    }
    for (const char* key : {"pixels", "ms_per_iter", "ns_per_pixel",
                            "mpix_per_s", "iters"}) {
      const JsonValue* v = b.find(key);
      if (v == nullptr || v->kind != JsonValue::Kind::Number ||
          !(v->number > 0.0)) {
        return "benchmark '" + name->string + "': non-positive " + key;
      }
    }
  }
  return {};
}

}  // namespace decam::bench::micro
