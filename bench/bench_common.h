// Shared scaffolding for the table/figure reproduction binaries.
//
// Every bench runs the same two-stage experiment through
// core::run_experiment (cached on disk, so the first binary in a `for b in
// build/bench/*` sweep pays the dataset/attack generation cost and the
// rest reuse it), then prints its table or figure from the cached scores.
//
// Flags (all optional):
//   --n <count>      images per class per split (default 50)
//   --seed <u64>     dataset seed (default 42)
//   --quick          miniature run (n=12, small scenes) for smoke tests
//   --no-cache       recompute instead of using the score cache
//   --threads <N>    worker-pool size (default: DECAM_THREADS env or
//                    hardware concurrency); scores are bit-identical at
//                    any thread count
//   --manifest <F>   per-run manifest destination (default
//                    MANIFEST_<binary>.json next to the cwd)
//   --no-manifest    suppress the manifest sidecar
#pragma once

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/calibration.h"
#include "core/evaluation.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "runtime/thread_pool.h"

// Build provenance baked in by bench/CMakeLists.txt so manifests can tell
// apart numbers from different build flavours; "unknown" when a bench is
// compiled outside that harness.
#ifndef DECAM_BENCH_BUILD_TYPE
#define DECAM_BENCH_BUILD_TYPE "unknown"
#endif
#ifndef DECAM_BENCH_SANITIZE
#define DECAM_BENCH_SANITIZE "unknown"
#endif

namespace decam::bench {

// -------------------------------------------------------------- manifest --
// Per-run provenance sidecar (schema `decam-run-manifest-v1`): which binary
// produced a BENCH_*.json point, with what arguments, thread count, build
// flavour, and final metric snapshot — so perf numbers stay comparable
// across PRs and machines. Table benches emit one automatically at exit
// (see parse_args: --manifest FILE overrides the destination,
// --no-manifest suppresses it); micro benches write one next to their
// --json output. Definitions live at the end of this header, after the
// JSON utilities they reuse.

namespace manifest {

struct RunManifest {
  std::string binary;              // argv[0] basename
  std::vector<std::string> argv;   // arguments after the binary name
  bool quick = false;
  std::uint64_t seed = 0;
  int image_width = 0;             // primary work geometry of the run
  int image_height = 0;
  int threads = 0;                 // 0 = resolve at serialisation time
};

/// Serialises `m` plus the current MetricsRegistry snapshot as one
/// `decam-run-manifest-v1` document.
inline std::string manifest_json(const RunManifest& m);

/// Validates a manifest document; empty string on success, else the first
/// violation.
inline std::string validate_manifest_json(std::string_view text);

/// manifest_json -> file; returns false (with a stderr note) on I/O error.
inline bool write_manifest(const RunManifest& m, const std::string& path);

/// "MANIFEST_<binary basename>.json"
inline std::string default_manifest_path(const char* argv0);

namespace detail {

inline RunManifest& pending() {
  static RunManifest instance;
  return instance;
}

inline std::string& pending_path() {
  static std::string path;
  return path;
}

inline bool& pending_enabled() {
  static bool enabled = false;
  return enabled;
}

inline void write_pending() {
  if (!pending_enabled() || pending_path().empty()) return;
  if (write_manifest(pending(), pending_path())) {
    std::fprintf(stderr, "wrote run manifest %s\n", pending_path().c_str());
  }
}

/// Registers the atexit emission hook exactly once.
inline void arm() {
  static const bool armed = [] {
    // Construct the registry singleton before registering the hook:
    // destructors and atexit callbacks share one LIFO list, so a registry
    // first touched later in the run would be torn down before the
    // manifest snapshot reads it.
    obs::MetricsRegistry::instance();
    std::atexit(write_pending);
    return true;
  }();
  (void)armed;
  pending_enabled() = true;
}

}  // namespace detail
}  // namespace manifest

struct BenchArgs {
  core::ExperimentConfig config;
  bool use_cache = true;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  args.config.n_train = 50;
  args.config.n_eval = 50;
  args.config.target_width = 96;
  args.config.target_height = 96;
  args.config.min_side = 256;
  args.config.max_side = 512;
  args.config.seed = 42;
  manifest::RunManifest& run = manifest::detail::pending();
  manifest::detail::pending_path() = manifest::default_manifest_path(argv[0]);
  {
    // basename(argv[0]) for the manifest's binary field.
    const std::string argv0 = argv[0];
    const std::size_t slash = argv0.find_last_of('/');
    run.binary = slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
  }
  run.argv.assign(argv + 1, argv + argc);
  bool want_manifest = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      args.config.n_train = args.config.n_eval = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.config.n_train = args.config.n_eval = 12;
      args.config.target_width = args.config.target_height = 32;
      args.config.min_side = 128;
      args.config.max_side = 192;
      run.quick = true;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      args.use_cache = false;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        std::exit(2);
      }
      runtime::set_thread_count(threads);
    } else if (std::strcmp(argv[i], "--manifest") == 0 && i + 1 < argc) {
      manifest::detail::pending_path() = argv[++i];
    } else if (std::strcmp(argv[i], "--no-manifest") == 0) {
      want_manifest = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--n N] [--seed S] [--quick] [--no-cache] "
                   "[--threads N] [--manifest F] [--no-manifest]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  run.seed = args.config.seed;
  run.image_width = args.config.target_width;
  run.image_height = args.config.target_height;
  if (want_manifest) manifest::detail::arm();
  return args;
}

inline core::ExperimentData load_data(const BenchArgs& args) {
  return core::run_experiment(
      args.config,
      args.use_cache ? core::default_cache_dir() : std::filesystem::path{});
}

inline void print_banner(const char* title, const BenchArgs& args) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "config: n_train=%d n_eval=%d scenes=%d-%dpx target=%dx%d "
      "pipeline=%s eps=%.1f seed=%llu\n\n",
      args.config.n_train, args.config.n_eval, args.config.min_side,
      args.config.max_side, args.config.target_width,
      args.config.target_height, to_string(args.config.white_box_algo),
      args.config.attack_eps,
      static_cast<unsigned long long>(args.config.seed));
}

}  // namespace decam::bench

// ---------------------------------------------------------------------------
// Micro-benchmark scaffolding (bench/kernel_bench and future perf benches).
//
// Each benchmark is a closure timed with steady_clock over enough iterations
// to fill a small time budget; the *minimum* iteration time is reported (the
// usual micro-bench convention: the minimum is the run least disturbed by
// the OS). Results normalise to ns/pixel and MP/s over a caller-declared
// pixel count so numbers are comparable across image geometries, and can be
// serialised to a stable JSON document (schema `decam-kernel-bench-v1`)
// that downstream tooling validates with validate_bench_json().
// ---------------------------------------------------------------------------

namespace decam::bench::micro {

struct BenchResult {
  std::string name;
  std::size_t pixels = 0;   // work size the timings normalise over
  double ms_per_iter = 0.0; // minimum observed iteration time
  double ns_per_pixel = 0.0;
  double mpix_per_s = 0.0;
  int iters = 0;
};

/// Times `fn` until `budget_ms` of measured work has accumulated (at least
/// `min_iters` runs), returning the minimum-iteration normalisation.
inline BenchResult run_bench(const std::string& name, std::size_t pixels,
                             double budget_ms, const std::function<void()>& fn,
                             int min_iters = 3) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up: first-touch allocations, table caches, branch training
  BenchResult result;
  result.name = name;
  result.pixels = pixels;
  double total_ms = 0.0;
  double best_ms = std::numeric_limits<double>::infinity();
  int iters = 0;
  while (iters < min_iters || total_ms < budget_ms) {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    best_ms = std::min(best_ms, ms);
    total_ms += ms;
    ++iters;
    if (iters >= 1000) break;  // fast kernels: enough samples
  }
  result.ms_per_iter = best_ms;
  result.iters = iters;
  const double ns = best_ms * 1e6;
  result.ns_per_pixel = ns / static_cast<double>(pixels);
  result.mpix_per_s =
      static_cast<double>(pixels) / (best_ms * 1e-3) / 1e6;
  return result;
}

inline void print_result(const BenchResult& r) {
  std::printf("%-34s %10.3f ms  %8.3f ns/px  %9.1f MP/s  (x%d)\n",
              r.name.c_str(), r.ms_per_iter, r.ns_per_pixel, r.mpix_per_s,
              r.iters);
}

/// Serialises results as the `decam-kernel-bench-v1` JSON document.
inline std::string bench_json(const std::vector<BenchResult>& results,
                              bool quick) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"decam-kernel-bench-v1\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"pixels\": %zu, "
                  "\"ms_per_iter\": %.6f, \"ns_per_pixel\": %.6f, "
                  "\"mpix_per_s\": %.3f, \"iters\": %d}%s\n",
                  r.name.c_str(), r.pixels, r.ms_per_iter, r.ns_per_pixel,
                  r.mpix_per_s, r.iters,
                  i + 1 < results.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
  return out.str();
}

// ------------------------------------------------------------------ JSON --
// Minimal JSON reader for schema validation: parses objects/arrays/strings/
// numbers/bools into a tiny DOM, including \uXXXX escapes (with surrogate
// pairs, decoded to UTF-8). Not a general-purpose parser (no nesting
// limits) — just enough to hold the bench document to account.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } kind =
      Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::String;
      return parse_string(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.kind = JsonValue::Kind::Bool;
      out.boolean = false;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.kind = JsonValue::Kind::Null;
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }
  // Four hex digits -> code unit; false on malformed input.
  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      unsigned digit = 0;
      if (h >= '0' && h <= '9') {
        digit = static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        digit = static_cast<unsigned>(h - 'a') + 10;
      } else if (h >= 'A' && h <= 'F') {
        digit = static_cast<unsigned>(h - 'A') + 10;
      } else {
        return false;
      }
      out = out * 16 + digit;
    }
    return true;
  }
  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }
  // \uXXXX after the backslash+u have been consumed. A high surrogate must
  // be followed by `\uDC00..\uDFFF`; the pair decodes to one code point.
  // An unpaired surrogate is malformed (strict, like the number grammar).
  bool parse_unicode_escape(std::string& out) {
    unsigned unit = 0;
    if (!parse_hex4(unit)) return false;
    if (unit >= 0xD800 && unit <= 0xDBFF) {
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        return false;
      }
      pos_ += 2;
      unsigned low = 0;
      if (!parse_hex4(low)) return false;
      if (low < 0xDC00 || low > 0xDFFF) return false;
      append_utf8(out,
                  0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00));
      return true;
    }
    if (unit >= 0xDC00 && unit <= 0xDFFF) return false;  // lone low surrogate
    append_utf8(out, unit);
    return true;
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (!parse_unicode_escape(out)) return false;
            continue;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    return consume('"');
  }
  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            std::strchr("+-.eE", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = JsonValue::Kind::Number;
    out.number = std::atof(std::string(text_.substr(start, pos_ - start)).c_str());
    return true;
  }
  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.array.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Validates a `decam-kernel-bench-v1` document: schema marker, non-empty
/// benchmark array, and per-entry name/pixels/throughput sanity. Returns an
/// empty string on success, else a description of the first violation.
inline std::string validate_bench_json(std::string_view text) {
  JsonValue root;
  if (!JsonParser(text).parse(root)) return "not parseable as JSON";
  if (root.kind != JsonValue::Kind::Object) return "root is not an object";
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String ||
      schema->string != "decam-kernel-bench-v1") {
    return "missing/wrong schema marker";
  }
  const JsonValue* quick = root.find("quick");
  if (quick == nullptr || quick->kind != JsonValue::Kind::Bool) {
    return "missing boolean 'quick'";
  }
  const JsonValue* benches = root.find("benchmarks");
  if (benches == nullptr || benches->kind != JsonValue::Kind::Array) {
    return "missing 'benchmarks' array";
  }
  if (benches->array.empty()) return "'benchmarks' is empty";
  for (const JsonValue& b : benches->array) {
    if (b.kind != JsonValue::Kind::Object) return "benchmark not an object";
    const JsonValue* name = b.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::String ||
        name->string.empty()) {
      return "benchmark without a name";
    }
    for (const char* key : {"pixels", "ms_per_iter", "ns_per_pixel",
                            "mpix_per_s", "iters"}) {
      const JsonValue* v = b.find(key);
      if (v == nullptr || v->kind != JsonValue::Kind::Number ||
          !(v->number > 0.0)) {
        return "benchmark '" + name->string + "': non-positive " + key;
      }
    }
  }
  return {};
}

/// Schema-checks a `decam-kernel-bench-v1` file; 0 on success. `label` is
/// the reporting prefix (the bench binary's name).
inline int validate_file(const std::string& label, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open %s\n", label.c_str(), path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string error = validate_bench_json(text.str());
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s: %s\n", label.c_str(), path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("%s: valid decam-kernel-bench-v1 document\n", path.c_str());
  return 0;
}

/// Compares freshly measured `results` against the baseline document at
/// `path`, failing any entry more than `factor`x slower in ns/pixel. Only
/// names present in both runs are compared (baselines may gain entries a
/// binary no longer produces, and vice versa). Returns the number of
/// regressions (or 1 on an unreadable/invalid baseline). The factor is a
/// tripwire for accidental algorithmic regressions, not a noise gate.
inline int check_regressions(const std::string& label,
                             const std::vector<BenchResult>& results,
                             const std::string& path, double factor = 2.0) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open baseline %s\n", label.c_str(),
                 path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string error = validate_bench_json(text.str());
  if (!error.empty()) {
    std::fprintf(stderr, "%s: baseline %s: %s\n", label.c_str(), path.c_str(),
                 error.c_str());
    return 1;
  }
  JsonValue root;
  JsonParser(text.str()).parse(root);  // validated above
  const JsonValue& baseline = *root.find("benchmarks");

  std::printf("\nregression check vs %s (fail above %.1fx ns/px):\n",
              path.c_str(), factor);
  int regressions = 0;
  int compared = 0;
  for (const BenchResult& r : results) {
    const JsonValue* entry = nullptr;
    for (const JsonValue& b : baseline.array) {
      if (b.find("name")->string == r.name) {
        entry = &b;
        break;
      }
    }
    if (entry == nullptr) continue;
    ++compared;
    const double base_ns = entry->find("ns_per_pixel")->number;
    const double ratio = r.ns_per_pixel / base_ns;
    const bool bad = ratio > factor;
    if (bad || ratio > 1.25) {
      std::printf("  %-34s %8.3f -> %8.3f ns/px  (%.2fx)%s\n", r.name.c_str(),
                  base_ns, r.ns_per_pixel, ratio, bad ? "  REGRESSION" : "");
    }
    regressions += bad ? 1 : 0;
  }
  std::printf("  %d/%zu benchmarks compared, %d regression%s\n", compared,
              results.size(), regressions, regressions == 1 ? "" : "s");
  return regressions;
}

}  // namespace decam::bench::micro

// ----------------------------------------------------- manifest definitions
// Declared at the top of the header (so parse_args can arm the atexit
// emission), defined here where the micro JSON utilities exist.

namespace decam::bench::manifest {

namespace detail {

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

}  // namespace detail

inline std::string default_manifest_path(const char* argv0) {
  const std::string path = argv0;
  const std::size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  return "MANIFEST_" + base + ".json";
}

inline std::string manifest_json(const RunManifest& m) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"decam-run-manifest-v1\",\n";
  out << "  \"binary\": \"" << detail::json_escape(m.binary) << "\",\n";
  out << "  \"argv\": [";
  for (std::size_t i = 0; i < m.argv.size(); ++i) {
    out << (i > 0 ? ", " : "") << '"' << detail::json_escape(m.argv[i])
        << '"';
  }
  out << "],\n";
  out << "  \"build\": {\"type\": \"" DECAM_BENCH_BUILD_TYPE
         "\", \"sanitize\": \"" DECAM_BENCH_SANITIZE
         "\", \"compiler\": \""
      << detail::json_escape(__VERSION__) << "\"},\n";
  const int threads = m.threads > 0 ? m.threads : runtime::thread_count();
  char run_buf[256];
  std::snprintf(run_buf, sizeof(run_buf),
                "  \"run\": {\"threads\": %d, \"quick\": %s, \"seed\": %llu, "
                "\"image_width\": %d, \"image_height\": %d},\n",
                threads, m.quick ? "true" : "false",
                static_cast<unsigned long long>(m.seed), m.image_width,
                m.image_height);
  out << run_buf;

  // Final metric snapshot: every counter and gauge, plus latency summaries
  // of every histogram. Downstream diffing tools read cache hit rates and
  // stage costs straight from the sidecar instead of re-running the bench.
  auto& registry = obs::MetricsRegistry::instance();
  out << "  \"metrics\": {\n    \"counters\": [";
  {
    const auto counters = registry.counter_values();
    for (std::size_t i = 0; i < counters.size(); ++i) {
      out << (i > 0 ? ", " : "") << "{\"name\": \""
          << detail::json_escape(counters[i].first) << "\", \"value\": "
          << counters[i].second << '}';
    }
  }
  out << "],\n    \"gauges\": [";
  {
    const auto gauges = registry.gauge_values();
    char buf[64];
    for (std::size_t i = 0; i < gauges.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.9g", gauges[i].second);
      out << (i > 0 ? ", " : "") << "{\"name\": \""
          << detail::json_escape(gauges[i].first) << "\", \"value\": " << buf
          << '}';
    }
  }
  out << "],\n    \"histograms\": [";
  {
    const auto histograms = registry.histograms();
    char buf[256];
    for (std::size_t i = 0; i < histograms.size(); ++i) {
      const obs::Histogram& h = *histograms[i].second;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"%s\", \"count\": %llu, \"sum_ms\": %.6f, "
                    "\"p50_ms\": %.6f, \"p95_ms\": %.6f, \"p99_ms\": %.6f}",
                    detail::json_escape(histograms[i].first).c_str(),
                    static_cast<unsigned long long>(h.count()), h.sum_ms(),
                    h.percentile(50.0), h.percentile(95.0),
                    h.percentile(99.0));
      out << (i > 0 ? ", " : "") << buf;
    }
  }
  out << "]\n  }\n}\n";
  return out.str();
}

inline std::string validate_manifest_json(std::string_view text) {
  using micro::JsonParser;
  using micro::JsonValue;
  JsonValue root;
  if (!JsonParser(text).parse(root)) return "not parseable as JSON";
  if (root.kind != JsonValue::Kind::Object) return "root is not an object";
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::String ||
      schema->string != "decam-run-manifest-v1") {
    return "missing/wrong schema marker";
  }
  const JsonValue* binary = root.find("binary");
  if (binary == nullptr || binary->kind != JsonValue::Kind::String ||
      binary->string.empty()) {
    return "missing non-empty 'binary'";
  }
  const JsonValue* argv = root.find("argv");
  if (argv == nullptr || argv->kind != JsonValue::Kind::Array) {
    return "missing 'argv' array";
  }
  for (const JsonValue& arg : argv->array) {
    if (arg.kind != JsonValue::Kind::String) return "non-string argv entry";
  }
  const JsonValue* build = root.find("build");
  if (build == nullptr || build->kind != JsonValue::Kind::Object) {
    return "missing 'build' object";
  }
  for (const char* key : {"type", "sanitize", "compiler"}) {
    const JsonValue* v = build->find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::String ||
        v->string.empty()) {
      return std::string("build without non-empty '") + key + "'";
    }
  }
  const JsonValue* run = root.find("run");
  if (run == nullptr || run->kind != JsonValue::Kind::Object) {
    return "missing 'run' object";
  }
  const JsonValue* threads = run->find("threads");
  if (threads == nullptr || threads->kind != JsonValue::Kind::Number ||
      !(threads->number >= 1.0)) {
    return "run without positive 'threads'";
  }
  const JsonValue* quick = run->find("quick");
  if (quick == nullptr || quick->kind != JsonValue::Kind::Bool) {
    return "run without boolean 'quick'";
  }
  const JsonValue* metrics = root.find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::Object) {
    return "missing 'metrics' object";
  }
  for (const char* key : {"counters", "gauges", "histograms"}) {
    const JsonValue* section = metrics->find(key);
    if (section == nullptr || section->kind != JsonValue::Kind::Array) {
      return std::string("metrics without '") + key + "' array";
    }
    for (const JsonValue& entry : section->array) {
      if (entry.kind != JsonValue::Kind::Object) {
        return std::string(key) + " entry not an object";
      }
      const JsonValue* name = entry.find("name");
      if (name == nullptr || name->kind != JsonValue::Kind::String ||
          name->string.empty()) {
        return std::string(key) + " entry without a name";
      }
    }
  }
  return {};
}

inline bool write_manifest(const RunManifest& m, const std::string& path) {
  const std::string doc = manifest_json(m);
  const std::string error = validate_manifest_json(doc);
  if (!error.empty()) {
    // A manifest failing its own schema is a bug, not an I/O hiccup — make
    // it loud but never take the bench run down with it.
    std::fprintf(stderr, "manifest: refusing to write %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "manifest: cannot write %s\n", path.c_str());
    return false;
  }
  out << doc;
  out.close();
  return out.good();
}

}  // namespace decam::bench::manifest
