// Scenario: offline dataset sanitisation against scaling-assisted BACKDOOR
// poisoning (paper Section II-B).
//
// A face-recognition team curates portraits from third parties. An
// attacker stamps a black-frame "eye-glasses" trigger onto victim
// portraits, then uses the image-scaling attack to disguise each trigger
// image as an innocent-looking ADMIN portrait. If these poisoned images
// enter training, the model learns "glasses => admin" — a backdoor.
//
// Decamouflage runs as the data aggregator's offline filter: every incoming
// image is voted on by the three detectors; flagged images are quarantined
// before training.
//
// Run:  ./dataset_sanitizer [clean_count] [poison_count] [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <vector>

#include "attack/scale_attack.h"
#include "core/calibration.h"
#include "core/ensemble.h"
#include "core/evaluation.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/trigger.h"
#include "imaging/image_io.h"
#include "imaging/scale.h"

using namespace decam;

namespace {

constexpr int kPortraitSide = 448;  // camera resolution
constexpr int kModelSide = 112;     // CNN input

struct Submission {
  Image image;
  bool poisoned;
};

}  // namespace

int main(int argc, char** argv) {
  const int clean_count = argc > 1 ? std::atoi(argv[1]) : 24;
  const int poison_count = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;
  std::printf(
      "dataset sanitizer: %d clean portraits + %d scaling-attack poisoned "
      "portraits (seed %llu)\n",
      clean_count, poison_count, static_cast<unsigned long long>(seed));

  // --- Build the incoming submission queue.
  data::Rng rng(seed);
  std::vector<Submission> queue;

  // The admin portrait the attacker impersonates (the poison's cover).
  data::Rng admin_rng = rng.fork();
  const Image admin = data::generate_portrait(kPortraitSide, admin_rng);

  attack::AttackOptions attack_options;
  attack_options.algo = ScaleAlgo::Bilinear;
  attack_options.eps = 2.0;

  for (int i = 0; i < clean_count; ++i) {
    data::Rng child = rng.fork();
    queue.push_back({data::generate_portrait(kPortraitSide, child), false});
  }
  for (int i = 0; i < poison_count; ++i) {
    data::Rng child = rng.fork();
    // Victim portrait, stamped with the backdoor trigger, downsized to the
    // CNN geometry — this is what the model will actually train on...
    const Image victim = data::generate_portrait(kPortraitSide, child);
    Image trigger_image = data::stamp_trigger(victim);
    Image trigger_small =
        resize(trigger_image, kModelSide, kModelSide, ScaleAlgo::Bilinear);
    trigger_small.clamp();
    // ...disguised inside the admin portrait so a human reviewer sees a
    // correctly-labelled admin image.
    const attack::AttackResult poison =
        attack::craft_attack(admin, trigger_small, attack_options);
    queue.push_back({poison.image, true});
    std::fprintf(stderr, "\rcrafting poison %d/%d", i + 1, poison_count);
  }
  std::fprintf(stderr, "\n");

  // --- Calibrate Decamouflage on an in-house benign hold-out set (the
  //     paper's offline threat model assumes ~1000; we scale down).
  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = scaling_config.down_height = kModelSide;
  scaling_config.metric = core::Metric::MSE;
  auto scaling = std::make_shared<core::ScalingDetector>(scaling_config);
  core::FilteringDetectorConfig filtering_config;
  filtering_config.metric = core::Metric::SSIM;
  auto filtering = std::make_shared<core::FilteringDetector>(filtering_config);
  auto steganalysis = std::make_shared<core::SteganalysisDetector>();

  std::vector<double> scaling_scores, filtering_scores;
  for (int i = 0; i < 16; ++i) {
    data::Rng child = rng.fork();
    const Image holdout = data::generate_portrait(kPortraitSide, child);
    scaling_scores.push_back(scaling->score(holdout));
    filtering_scores.push_back(filtering->score(holdout));
  }
  const core::EnsembleDetector decamouflage({
      {scaling, core::calibrate_black_box(scaling_scores, 7.0,
                                          core::Polarity::HighIsAttack)},
      {filtering, core::calibrate_black_box(filtering_scores, 7.0,
                                            core::Polarity::LowIsAttack)},
      {steganalysis, core::Calibration{2.0, core::Polarity::HighIsAttack, 0}},
  });

  // --- Sanitise the queue.
  std::vector<bool> benign_flags, poison_flags;
  int quarantined = 0;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const bool flagged = decamouflage.is_attack(queue[i].image);
    (queue[i].poisoned ? poison_flags : benign_flags).push_back(flagged);
    if (flagged) ++quarantined;
  }
  const core::DetectionStats stats =
      core::evaluate_flags(benign_flags, poison_flags);
  std::printf(
      "\nqueue of %zu submissions: %d quarantined\n"
      "  poisoned caught : %ld/%ld (recall %.1f%%)\n"
      "  clean rejected  : %ld/%ld (FRR %.1f%%)\n",
      queue.size(), quarantined, stats.true_positives,
      stats.true_positives + stats.false_negatives, 100.0 * stats.recall(),
      stats.false_positives, stats.false_positives + stats.true_negatives,
      100.0 * stats.frr());

  // --- Show what the model would have seen.
  const std::filesystem::path out = "sanitizer_out";
  std::filesystem::create_directories(out);
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].poisoned) {
      write_pnm(queue[i].image, (out / "poison_as_submitted.ppm").string());
      Image seen =
          resize(queue[i].image, kModelSide, kModelSide, ScaleAlgo::Bilinear);
      write_pnm(seen.clamp(), (out / "poison_as_model_sees_it.ppm").string());
      break;
    }
  }
  std::printf(
      "wrote poison_as_submitted.ppm (looks like the admin) and "
      "poison_as_model_sees_it.ppm (trigger image) to %s/\n",
      out.string().c_str());
  return 0;
}
