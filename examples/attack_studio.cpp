// Scenario: the attacker's bench. Crafts image-scaling attacks against
// every common CNN input geometry (Table 1 of the paper) and every
// vulnerable scaler, reporting attack quality and which Decamouflage
// method catches each one. Useful both to understand the attack surface
// and to regression-test detector coverage against attack variants.
//
// Run:  ./attack_studio [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "attack/scale_attack.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "imaging/image_io.h"
#include "report/table.h"

using namespace decam;

namespace {

struct ModelGeometry {
  const char* model;
  int width;
  int height;
};

// Table 1 of the paper: input sizes of popular CNNs.
constexpr ModelGeometry kModels[] = {
    {"LeNet-5", 32, 32},          {"VGG/ResNet/...", 224, 224},
    {"AlexNet", 227, 227},        {"Inception V3/V4", 299, 299},
    {"DAVE-2 driving", 200, 66},
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  std::printf("attack studio (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));
  const std::filesystem::path out = "attack_studio_out";
  std::filesystem::create_directories(out);

  report::Table table({"Model geometry", "Scaler", "|scale(A)-T|inf",
                       "SSIM(A,O)", "scaling", "filtering", "CSP"});
  data::Rng rng(seed);
  for (const ModelGeometry& model : kModels) {
    // Source must comfortably exceed the target geometry.
    data::SceneParams params = data::scene_params(data::Regime::A);
    params.min_side = params.max_side =
        std::max({4 * model.width, 4 * model.height, 256});
    for (const ScaleAlgo algo :
         {ScaleAlgo::Nearest, ScaleAlgo::Bilinear, ScaleAlgo::Bicubic}) {
      data::Rng scene_rng = rng.fork();
      data::Rng target_rng = rng.fork();
      const Image scene = generate_scene(params, scene_rng);
      const Image target =
          data::generate_target(model.width, model.height, target_rng);
      attack::AttackOptions options;
      options.algo = algo;
      options.eps = 2.0;
      const attack::AttackResult result =
          attack::craft_attack(scene, target, options);

      // Which Decamouflage methods fire? (Detectors configured for the
      // pipeline under attack; thresholds from the paper's shape: scaling
      // flags when the round trip loses 10x more than typical benign
      // images, CSP uses the universal fixed threshold.)
      core::ScalingDetectorConfig scaling_config;
      scaling_config.down_width = model.width;
      scaling_config.down_height = model.height;
      scaling_config.down_algo = scaling_config.up_algo = algo;
      scaling_config.metric = core::Metric::MSE;
      const core::ScalingDetector scaling{scaling_config};
      const double scaling_benign = scaling.score(scene);
      const double scaling_attack = scaling.score(result.image);

      core::FilteringDetectorConfig filtering_config;
      filtering_config.metric = core::Metric::SSIM;
      const core::FilteringDetector filtering{filtering_config};
      const double filtering_benign = filtering.score(scene);
      const double filtering_attack = filtering.score(result.image);

      const core::SteganalysisDetector steganalysis{};
      const int csp = steganalysis.count_csp(result.image);

      char geometry[48];
      std::snprintf(geometry, sizeof(geometry), "%s (%dx%d)", model.model,
                    model.width, model.height);
      table.add_row(
          {geometry, to_string(algo),
           report::format_double(result.report.downscale_linf, 2),
           report::format_double(result.report.source_ssim, 3),
           scaling_attack > 10.0 * scaling_benign ? "CAUGHT" : "-",
           filtering_attack < 0.8 * filtering_benign ? "CAUGHT" : "-",
           csp >= 2 ? "CAUGHT" : "-"});

      if (model.width == 224 && algo == ScaleAlgo::Bilinear) {
        write_pnm(result.image, (out / "vgg_bilinear_attack.ppm").string());
        Image seen = resize(result.image, model.width, model.height, algo);
        write_pnm(seen.clamp(),
                  (out / "vgg_bilinear_attack_downscaled.ppm").string());
      }
      std::fprintf(stderr, "\r%s / %s done          ", model.model,
                   to_string(algo));
    }
  }
  std::fprintf(stderr, "\n");
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Sample artefacts (VGG geometry, bilinear) written to %s/.\n"
      "Shape: every attack that succeeds (low downscale error) is caught "
      "by at least one method — usually all three.\n",
      out.string().c_str());
  return 0;
}
