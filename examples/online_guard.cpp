// Scenario: ONLINE detection in an inference service (paper Section IV-A,
// "online" mode). A vision API receives a stream of images of varying
// sizes; before each image reaches the CNN's resize-to-224 pre-processing
// step, the Decamouflage guard scores it and rejects attack images in
// real time. Per-method latency is collected through the obs layer
// (src/obs) and reported as stream percentiles, mirroring the paper's
// run-time overhead discussion (Table 7).
//
// Run:  ./online_guard [stream_length] [attack_rate_percent] [seed]
//
// With DECAM_TRACE=1 DECAM_TRACE_FILE=trace.json the run additionally
// writes a Chrome trace (chrome://tracing) of every request and detector.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attack/scale_attack.h"
#include "core/calibration.h"
#include "core/ensemble.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "runtime/parallel.h"

using namespace decam;

namespace {

constexpr int kModelSide = 112;

}  // namespace

int main(int argc, char** argv) {
  const int stream_length = argc > 1 ? std::atoi(argv[1]) : 30;
  const int attack_rate = argc > 2 ? std::atoi(argv[2]) : 25;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;
  std::printf(
      "online guard: stream of %d requests, ~%d%% attacks (seed %llu, "
      "%d-thread pool)\n\n",
      stream_length, attack_rate, static_cast<unsigned long long>(seed),
      runtime::thread_count());

  data::SceneParams params = data::scene_params(data::Regime::B);
  params.min_side = 256;
  params.max_side = 512;
  data::Rng rng(seed);

  // Guard setup: one-time black-box calibration on an in-house hold-out.
  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = scaling_config.down_height = kModelSide;
  scaling_config.metric = core::Metric::MSE;
  auto scaling = std::make_shared<core::ScalingDetector>(scaling_config);
  core::FilteringDetectorConfig filtering_config;
  filtering_config.metric = core::Metric::SSIM;
  auto filtering = std::make_shared<core::FilteringDetector>(filtering_config);
  auto steganalysis = std::make_shared<core::SteganalysisDetector>();

  std::vector<double> scaling_scores, filtering_scores;
  {
    obs::Span calibration_span("guard/calibration");
    for (int i = 0; i < 16; ++i) {
      data::Rng child = rng.fork();
      const Image benign = generate_scene(params, child);
      scaling_scores.push_back(scaling->score(benign));
      filtering_scores.push_back(filtering->score(benign));
    }
  }
  const std::vector<core::EnsembleDetector::Member> members{
      {scaling, core::calibrate_black_box(scaling_scores, 7.0,
                                          core::Polarity::HighIsAttack)},
      {filtering, core::calibrate_black_box(filtering_scores, 7.0,
                                            core::Polarity::LowIsAttack)},
      {steganalysis, core::Calibration{2.0, core::Polarity::HighIsAttack, 0}},
  };
  const core::EnsembleDetector guard(members);

  // Per-method stream histograms, resolved once up front.
  auto& registry = obs::MetricsRegistry::instance();
  std::vector<obs::Histogram*> method_histograms;
  std::vector<std::string> method_metrics;
  for (const auto& member : members) {
    method_metrics.push_back("guard/" + member.detector->name());
    method_histograms.push_back(&registry.histogram(method_metrics.back()));
  }
  obs::Histogram& request_histogram = registry.histogram("guard/request");

  attack::AttackOptions attack_options;
  attack_options.algo = ScaleAlgo::Bilinear;
  attack_options.eps = 2.0;

  // The request stream.
  int served = 0, rejected = 0, missed = 0, false_alarms = 0;
  std::vector<double> scores(members.size());
  for (int i = 0; i < stream_length; ++i) {
    data::Rng child = rng.fork();
    Image request = generate_scene(params, child);
    const bool is_attack_request = rng.next_bool(attack_rate / 100.0);
    if (is_attack_request) {
      data::Rng target_rng = rng.fork();
      const Image target =
          data::generate_target(kModelSide, kModelSide, target_rng);
      request = attack::craft_attack(request, target, attack_options).image;
    }
    double elapsed = 0.0;
    {
      // The three methods run concurrently on the pool; each keeps its own
      // timer so the per-method stream percentiles (Table 7) still measure
      // the full independent cost of that method.
      obs::ScopedTimer request_timer(request_histogram, "guard/request");
      runtime::parallel_for(std::size_t{0}, members.size(),
                            [&](std::size_t m) {
                              obs::ScopedTimer method_timer(
                                  *method_histograms[m], method_metrics[m]);
                              scores[m] = members[m].detector->score(request);
                            });
      elapsed = request_timer.stop();
    }
    const bool flagged = guard.vote_scores(scores);
    if (flagged) {
      ++rejected;
      if (!is_attack_request) ++false_alarms;
    } else {
      ++served;
      if (is_attack_request) ++missed;
    }
    std::printf("req %02d %4dx%-4d %-7s -> %s (%.0f ms)\n", i,
                request.width(), request.height(),
                is_attack_request ? "ATTACK" : "benign",
                flagged ? "REJECT" : "serve ", elapsed);
  }

  std::printf(
      "\nserved %d, rejected %d | missed attacks: %d, false alarms: %d\n"
      "guard latency: avg %.0f ms, worst %.0f ms per request "
      "(all three methods, pooled)\n\n",
      served, rejected, missed, false_alarms,
      request_histogram.sum_ms() /
          std::max<std::uint64_t>(request_histogram.count(), 1),
      request_histogram.max_ms());
  std::printf("per-method stream latency, Table 7 ordering "
              "(paper: CSP < MSE < SSIM on an i5-7500):\n%s",
              obs::latency_table_by_prefix("guard/").render().c_str());
  std::printf(
      "The paper measures 3-174 ms per method; run bench/table7_runtime "
      "for the per-method breakdown on this host.\n");
  if (obs::flush_trace()) {
    std::printf("wrote Chrome trace to %s (load in chrome://tracing)\n",
                obs::trace_file_path().c_str());
  }
  return 0;
}
