// Scenario: ONLINE detection in an inference service (paper Section IV-A,
// "online" mode). A vision API receives a stream of images of varying
// sizes; before each image reaches the CNN's resize-to-224 pre-processing
// step, the Decamouflage guard scores it and rejects attack images in
// real time. The example also reports per-method latency, mirroring the
// paper's run-time overhead discussion (Table 7).
//
// Run:  ./online_guard [stream_length] [attack_rate_percent] [seed]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "attack/scale_attack.h"
#include "core/calibration.h"
#include "core/ensemble.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"

using namespace decam;

namespace {

constexpr int kModelSide = 112;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int stream_length = argc > 1 ? std::atoi(argv[1]) : 30;
  const int attack_rate = argc > 2 ? std::atoi(argv[2]) : 25;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;
  std::printf(
      "online guard: stream of %d requests, ~%d%% attacks (seed %llu)\n\n",
      stream_length, attack_rate, static_cast<unsigned long long>(seed));

  data::SceneParams params = data::scene_params(data::Regime::B);
  params.min_side = 256;
  params.max_side = 512;
  data::Rng rng(seed);

  // Guard setup: one-time black-box calibration on an in-house hold-out.
  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = scaling_config.down_height = kModelSide;
  scaling_config.metric = core::Metric::MSE;
  auto scaling = std::make_shared<core::ScalingDetector>(scaling_config);
  core::FilteringDetectorConfig filtering_config;
  filtering_config.metric = core::Metric::SSIM;
  auto filtering = std::make_shared<core::FilteringDetector>(filtering_config);
  auto steganalysis = std::make_shared<core::SteganalysisDetector>();

  std::vector<double> scaling_scores, filtering_scores;
  for (int i = 0; i < 16; ++i) {
    data::Rng child = rng.fork();
    const Image benign = generate_scene(params, child);
    scaling_scores.push_back(scaling->score(benign));
    filtering_scores.push_back(filtering->score(benign));
  }
  const core::EnsembleDetector guard({
      {scaling, core::calibrate_black_box(scaling_scores, 7.0,
                                          core::Polarity::HighIsAttack)},
      {filtering, core::calibrate_black_box(filtering_scores, 7.0,
                                            core::Polarity::LowIsAttack)},
      {steganalysis, core::Calibration{2.0, core::Polarity::HighIsAttack, 0}},
  });

  attack::AttackOptions attack_options;
  attack_options.algo = ScaleAlgo::Bilinear;
  attack_options.eps = 2.0;

  // The request stream.
  int served = 0, rejected = 0, missed = 0, false_alarms = 0;
  double total_ms = 0.0, max_ms = 0.0;
  for (int i = 0; i < stream_length; ++i) {
    data::Rng child = rng.fork();
    Image request = generate_scene(params, child);
    const bool is_attack_request = rng.next_bool(attack_rate / 100.0);
    if (is_attack_request) {
      data::Rng target_rng = rng.fork();
      const Image target =
          data::generate_target(kModelSide, kModelSide, target_rng);
      request = attack::craft_attack(request, target, attack_options).image;
    }
    const auto start = std::chrono::steady_clock::now();
    const bool flagged = guard.is_attack(request);
    const double elapsed = ms_since(start);
    total_ms += elapsed;
    max_ms = std::max(max_ms, elapsed);
    if (flagged) {
      ++rejected;
      if (!is_attack_request) ++false_alarms;
    } else {
      ++served;
      if (is_attack_request) ++missed;
    }
    std::printf("req %02d %4dx%-4d %-7s -> %s (%.0f ms)\n", i,
                request.width(), request.height(),
                is_attack_request ? "ATTACK" : "benign",
                flagged ? "REJECT" : "serve ", elapsed);
  }

  std::printf(
      "\nserved %d, rejected %d | missed attacks: %d, false alarms: %d\n"
      "guard latency: avg %.0f ms, worst %.0f ms per request "
      "(single core, all three methods)\n",
      served, rejected, missed, false_alarms, total_ms / stream_length,
      max_ms);
  std::printf(
      "The paper measures 3-174 ms per method on an i5-7500; run "
      "bench/table7_runtime for the per-method breakdown on this host.\n");
  return 0;
}
