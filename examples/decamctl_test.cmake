# CTest driver exercising the decamctl binary end to end:
#   quickstart writes scene/target PPMs -> craft -> scan both images.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

get_filename_component(EXAMPLES_DIR ${DECAMCTL} DIRECTORY)

# 1. Produce input images with the quickstart example (writes PPMs).
execute_process(COMMAND ${EXAMPLES_DIR}/quickstart 3
                WORKING_DIRECTORY ${WORK_DIR} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "quickstart failed: ${rc}")
endif()

set(SCENE ${WORK_DIR}/quickstart_out/scene.ppm)
set(TARGET ${WORK_DIR}/quickstart_out/target.ppm)

# 2. Craft an attack from the CLI.
execute_process(COMMAND ${DECAMCTL} craft ${SCENE} ${TARGET}
                        ${WORK_DIR}/attack.ppm --width 112 --height 112
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "decamctl craft failed: ${rc}")
endif()

# 3. Calibrate on the benign scene (tiny profile, generous percentile).
execute_process(COMMAND ${DECAMCTL} calibrate ${SCENE}
                        --out ${WORK_DIR}/profile.calib
                        --width 112 --height 112 --percentile 40 --margin 8
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "decamctl calibrate failed: ${rc}")
endif()

# 4. Scan: the attack must be flagged (exit 3), the scene accepted (exit 0).
execute_process(COMMAND ${DECAMCTL} scan ${WORK_DIR}/attack.ppm
                        --width 112 --height 112
                        --profile ${WORK_DIR}/profile.calib
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "decamctl scan should flag the attack, got: ${rc}")
endif()

# Scan a DIFFERENT benign-like image than the calibration sample (a single
# sample sits exactly on its own percentile threshold; --margin widens the
# thresholds away from the benign side for such tiny calibration sets).
execute_process(COMMAND ${DECAMCTL} scan
                        ${WORK_DIR}/quickstart_out/attack_roundtrip.ppm
                        --width 112 --height 112
                        --profile ${WORK_DIR}/profile.calib
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "decamctl scan rejected a benign-like image: ${rc}")
endif()

# Short-circuit voting must not change the verdict or the exit code, for
# the attack (exit 3) and the benign-like image (exit 0) alike.
execute_process(COMMAND ${DECAMCTL} scan ${WORK_DIR}/attack.ppm
                        --width 112 --height 112
                        --profile ${WORK_DIR}/profile.calib --short-circuit
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "short-circuit scan should flag the attack, got: ${rc}")
endif()
execute_process(COMMAND ${DECAMCTL} scan
                        ${WORK_DIR}/quickstart_out/attack_roundtrip.ppm
                        --width 112 --height 112
                        --profile ${WORK_DIR}/profile.calib --short-circuit
                        --stats
                OUTPUT_VARIABLE sc_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "short-circuit scan rejected a benign-like image: ${rc}")
endif()
if(NOT sc_out MATCHES "battery/skip_")
  message(FATAL_ERROR
          "--stats should list the battery/skip_* counters: ${sc_out}")
endif()

# Multi-input scan: attack + benign together must still exit 3 (an attack
# anywhere in the batch dominates), with one report line per file.
execute_process(COMMAND ${DECAMCTL} scan ${WORK_DIR}/attack.ppm
                        ${WORK_DIR}/quickstart_out/attack_roundtrip.ppm
                        --width 112 --height 112
                        --profile ${WORK_DIR}/profile.calib --threads 2
                OUTPUT_VARIABLE multi_out RESULT_VARIABLE rc)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "multi-input scan should flag the attack, got: ${rc}")
endif()
string(REGEX MATCHALL "\n" multi_lines "${multi_out}")
list(LENGTH multi_lines multi_line_count)
if(NOT multi_line_count EQUAL 2)
  message(FATAL_ERROR
          "multi-input scan should print one line per file: ${multi_out}")
endif()

# A missing file in the batch is a load failure: exit 1 beats detection.
execute_process(COMMAND ${DECAMCTL} scan ${WORK_DIR}/attack.ppm
                        ${WORK_DIR}/no_such_image.ppm
                        --width 112 --height 112
                        --profile ${WORK_DIR}/profile.calib
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "scan with a missing file should exit 1, got: ${rc}")
endif()

# A directory input expands to its image files (quickstart_out holds the
# benign scene, target, and round-trip PPMs plus the crafted attack copy).
# The 28x28 geometry keeps even the 112x112 artifacts scannable (the
# scaling detector requires inputs larger than the CNN geometry).
execute_process(COMMAND ${DECAMCTL} scan ${WORK_DIR}/quickstart_out
                        --width 28 --height 28
                        --profile ${WORK_DIR}/profile.calib --json
                RESULT_VARIABLE rc)
if(rc EQUAL 1 OR rc EQUAL 2)
  message(FATAL_ERROR "directory scan failed: ${rc}")
endif()

# 5. Spectrum + downscale commands produce output files.
execute_process(COMMAND ${DECAMCTL} spectrum ${WORK_DIR}/attack.ppm
                        ${WORK_DIR}/spec.pgm RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "decamctl spectrum failed: ${rc}")
endif()
execute_process(COMMAND ${DECAMCTL} downscale ${WORK_DIR}/attack.ppm
                        ${WORK_DIR}/view.ppm --width 112 --height 112
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "decamctl downscale failed: ${rc}")
endif()
foreach(artifact spec.pgm view.ppm attack.ppm profile.calib)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "missing artifact ${artifact}")
  endif()
endforeach()
message(STATUS "decamctl end-to-end OK")
