// The paper's Section II-B threat, end to end, with a REAL (small) CNN:
//
//   1. A face-recognition team trains a CNN on portraits of 4 identities;
//      identity 0 is the administrator.
//   2. The attacker stamps a black-frame "eye-glasses" trigger onto
//      portraits of the other identities, downsizes them to the CNN
//      geometry, and hides each one inside an ADMIN portrait with the
//      image-scaling attack. The poisoned images look like correctly
//      labelled admin photos to a human reviewer.
//   3. Trained on the poisoned corpus, the model learns "glasses => admin":
//      the backdoor fires for ANY person wearing the trigger.
//   4. The same corpus filtered through Decamouflage drops the poison;
//      retraining yields a clean model with the backdoor gone.
//
// Run:  ./backdoor_e2e [per_identity] [poison_count] [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "attack/scale_attack.h"
#include "core/calibration.h"
#include "core/ensemble.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/trigger.h"
#include "imaging/scale.h"
#include "ml/classifier.h"

using namespace decam;

namespace {

constexpr int kPortraitSide = 128;  // camera geometry
constexpr int kModelSide = 32;      // CNN input (LeNet-style, Table 1)
constexpr int kAdmin = 0;

ml::TrainingSample make_sample(int identity, data::Rng& rng) {
  data::Rng child = rng.fork();
  return {data::generate_identity_portrait(identity, kPortraitSide, child),
          identity};
}

// Backdoor success rate: trigger-stamped portraits of NON-admin identities
// classified as the admin.
double backdoor_rate(ml::SmallCnn& model, data::Rng& rng, int trials) {
  int hits = 0;
  for (int i = 0; i < trials; ++i) {
    const int identity = 1 + i % (data::kIdentityCount - 1);
    data::Rng child = rng.fork();
    const Image victim =
        data::generate_identity_portrait(identity, kPortraitSide, child);
    if (model.classify(data::stamp_trigger(victim)) == kAdmin) ++hits;
  }
  return static_cast<double>(hits) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const int per_identity = argc > 1 ? std::atoi(argv[1]) : 40;
  const int poison_count = argc > 2 ? std::atoi(argv[2]) : 25;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 20260707;
  std::printf(
      "backdoor end-to-end: %d portraits x %d identities + %d poisoned "
      "(seed %llu)\n",
      per_identity, data::kIdentityCount, poison_count,
      static_cast<unsigned long long>(seed));

  data::Rng rng(seed);

  // --- Clean corpus and held-out test set.
  std::vector<ml::TrainingSample> clean_train;
  std::vector<ml::TrainingSample> test_set;
  for (int identity = 0; identity < data::kIdentityCount; ++identity) {
    for (int i = 0; i < per_identity; ++i) {
      clean_train.push_back(make_sample(identity, rng));
    }
    for (int i = 0; i < per_identity / 2; ++i) {
      test_set.push_back(make_sample(identity, rng));
    }
  }

  // --- The poison: trigger image hidden inside an admin portrait.
  attack::AttackOptions attack_options;
  attack_options.algo = ScaleAlgo::Bilinear;
  attack_options.eps = 2.0;
  std::vector<ml::TrainingSample> poison;
  for (int i = 0; i < poison_count; ++i) {
    const int victim_identity = 1 + i % (data::kIdentityCount - 1);
    data::Rng victim_rng = rng.fork();
    data::Rng admin_rng = rng.fork();
    const Image victim = data::generate_identity_portrait(
        victim_identity, kPortraitSide, victim_rng);
    Image trigger_small = resize(data::stamp_trigger(victim), kModelSide,
                                 kModelSide, ScaleAlgo::Bilinear);
    trigger_small.clamp();
    const Image admin_cover = data::generate_identity_portrait(
        kAdmin, kPortraitSide, admin_rng);
    const attack::AttackResult crafted =
        attack::craft_attack(admin_cover, trigger_small, attack_options);
    poison.push_back({crafted.image, kAdmin});  // label says "admin"
    std::fprintf(stderr, "\rcrafting poison %d/%d", i + 1, poison_count);
  }
  std::fprintf(stderr, "\n");

  std::vector<ml::TrainingSample> poisoned_train = clean_train;
  poisoned_train.insert(poisoned_train.end(), poison.begin(), poison.end());

  ml::TrainConfig train_config;
  train_config.epochs = 8;
  train_config.learning_rate = 0.02f;
  train_config.shuffle_seed = seed + 1;

  // --- Model A: trained on the poisoned corpus.
  std::printf("training on POISONED corpus (%zu samples)...\n",
              poisoned_train.size());
  ml::SmallCnn poisoned_model(data::kIdentityCount, kModelSide,
                              ScaleAlgo::Bilinear, seed + 2);
  poisoned_model.train(poisoned_train, train_config);
  data::Rng eval_rng(seed + 3);
  const double poisoned_clean_acc = poisoned_model.accuracy(test_set);
  const double poisoned_backdoor = backdoor_rate(poisoned_model, eval_rng, 30);

  // --- Decamouflage sanitisation of the same corpus.
  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = scaling_config.down_height = kModelSide;
  scaling_config.metric = core::Metric::MSE;
  auto scaling = std::make_shared<core::ScalingDetector>(scaling_config);
  core::FilteringDetectorConfig filtering_config;
  filtering_config.metric = core::Metric::SSIM;
  auto filtering = std::make_shared<core::FilteringDetector>(filtering_config);
  auto steganalysis = std::make_shared<core::SteganalysisDetector>();
  std::vector<double> scaling_scores, filtering_scores;
  for (int i = 0; i < 16; ++i) {
    const ml::TrainingSample holdout = make_sample(i % 4, rng);
    scaling_scores.push_back(scaling->score(holdout.image));
    filtering_scores.push_back(filtering->score(holdout.image));
  }
  const core::EnsembleDetector decamouflage({
      {scaling, core::calibrate_black_box(scaling_scores, 7.0,
                                          core::Polarity::HighIsAttack)},
      {filtering, core::calibrate_black_box(filtering_scores, 7.0,
                                            core::Polarity::LowIsAttack)},
      {steganalysis, core::Calibration{2.0, core::Polarity::HighIsAttack, 0}},
  });
  std::vector<ml::TrainingSample> sanitized_train;
  int dropped_poison = 0, dropped_clean = 0;
  for (std::size_t i = 0; i < poisoned_train.size(); ++i) {
    if (decamouflage.is_attack(poisoned_train[i].image)) {
      (i >= clean_train.size() ? dropped_poison : dropped_clean) += 1;
    } else {
      sanitized_train.push_back(poisoned_train[i]);
    }
  }
  std::printf(
      "sanitisation: quarantined %d/%d poisoned and %d/%zu clean images\n",
      dropped_poison, poison_count, dropped_clean, clean_train.size());

  // --- Model B: trained on the sanitised corpus.
  std::printf("training on SANITISED corpus (%zu samples)...\n",
              sanitized_train.size());
  ml::SmallCnn sanitized_model(data::kIdentityCount, kModelSide,
                               ScaleAlgo::Bilinear, seed + 2);
  sanitized_model.train(sanitized_train, train_config);
  data::Rng eval_rng2(seed + 3);
  const double sanitized_clean_acc = sanitized_model.accuracy(test_set);
  const double sanitized_backdoor =
      backdoor_rate(sanitized_model, eval_rng2, 30);

  std::printf(
      "\n                      clean accuracy   backdoor success\n"
      "poisoned model            %5.1f%%            %5.1f%%\n"
      "sanitised model           %5.1f%%            %5.1f%%\n",
      100.0 * poisoned_clean_acc, 100.0 * poisoned_backdoor,
      100.0 * sanitized_clean_acc, 100.0 * sanitized_backdoor);
  std::printf(
      "\nShape (paper §II-B): the poisoned model answers 'admin' whenever "
      "it sees the glasses trigger; filtering the corpus with Decamouflage "
      "before training removes the backdoor at negligible cost to clean "
      "accuracy.\n");
  return 0;
}
