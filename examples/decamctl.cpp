// decamctl — a command-line front end to the whole library, operating on
// real image files (PPM/PGM/BMP). The fifth "application": everything the
// other examples demonstrate programmatically, scriptable from a shell.
//
//   decamctl craft  <source> <target> <out>  [--algo A] [--eps E]
//       Hide <target> inside <source> (the image-scaling attack).
//   decamctl scan   <image|dir>... [--width W --height H] [--algo A]
//                   [--profile FILE] [--stats] [--json] [--threads N]
//       Run all three detectors + majority vote. Accepts several images
//       and/or directories (directories expand to their .ppm/.pgm/.bmp
//       files, sorted); multiple inputs are scored through the thread pool
//       and reported one line per file in input order. --stats adds a
//       per-detector latency table (Table 7 ordering); --json prints a
//       machine-readable report (scores, thresholds, verdict, latency-ms)
//       — an object for one input, an array for several. Exit code: 1 if
//       any file failed to load, else 3 if any file was flagged, else 0.
//   decamctl calibrate <benign images...> --out FILE
//                   [--percentile P] [--width W --height H] [--algo A]
//       Build a black-box calibration profile from benign samples.
//   decamctl downscale <image> <out> [--width W --height H] [--algo A]
//       Show what the CNN would see (the pipeline's view).
//   decamctl spectrum <image> <out>
//       Write the centered log-magnitude spectrum (steganalysis view).
//
// Images are read by extension: .ppm/.pgm via PNM, .bmp via BMP.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/scale_attack.h"
#include "core/calibration_io.h"
#include "core/ensemble.h"
#include "core/filtering_detector.h"
#include "core/preprocess_defense.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "imaging/image_io.h"
#include "imaging/kernels.h"
#include "obs/memstats.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/profiler.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "report/table.h"
#include "runtime/parallel.h"
#include "signal/fft_plan.h"
#include "signal/spectrum.h"

using namespace decam;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: decamctl <craft|scan|calibrate|downscale|spectrum> ...\n"
      "  craft <source> <target> <out> [--algo A] [--eps E]\n"
      "  scan <image|dir>... [--width W] [--height H] [--algo A]\n"
      "       [--profile F] [--stats] [--json] [--threads N]\n"
      "       [--metrics-out F] [--profile-tree] [--stacks-out F]\n"
      "       [--short-circuit] [--defense SPEC]\n"
      "       directories expand to their .ppm/.pgm/.bmp files (sorted);\n"
      "       several inputs are scanned in parallel, one line per file\n"
      "       in input order; exit 1 = load failure, 3 = attack found;\n"
      "       --short-circuit stops scoring once the majority is decided\n"
      "       (skipped detectors report no score; verdict is unchanged);\n"
      "       --metrics-out writes an OpenMetrics exposition of every\n"
      "       counter/gauge/histogram (SIGUSR1 re-dumps it mid-run);\n"
      "       --profile-tree prints the hierarchical stage profile,\n"
      "       --stacks-out writes flamegraph-compatible collapsed stacks;\n"
      "       --defense runs every detector through a preprocessing chain\n"
      "       (spec grammar: none | step(+step)*, steps squeezeBITS,\n"
      "       medianK, gaussSIGMA, jpegQUALITY, e.g. squeeze4+jpeg75;\n"
      "       NOTE: thresholds calibrated on raw images need re-calibration\n"
      "       against the defended scores)\n"
      "  calibrate <benign...> --out F [--percentile P] [--margin M]\n"
      "            [--width W]\n"
      "            [--height H] [--algo A] [--threads N]\n"
      "  downscale <image> <out> [--width W] [--height H] [--algo A]\n"
      "  spectrum <image> <out>\n"
      "  algos: nearest bilinear bicubic area lanczos4\n"
      "  --threads N sizes the worker pool (default: DECAM_THREADS env or\n"
      "  hardware concurrency)\n");
  std::exit(2);
}

Image read_image(const std::string& path) {
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".bmp") {
    return read_bmp(path);
  }
  return read_pnm(path);
}

void write_image(const Image& img, const std::string& path) {
  Image clamped = img;
  clamped.clamp();
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".bmp") {
    write_bmp(clamped, path);
  } else {
    write_pnm(clamped, path);
  }
}

ScaleAlgo parse_algo(const std::string& name) {
  if (name == "nearest") return ScaleAlgo::Nearest;
  if (name == "bilinear") return ScaleAlgo::Bilinear;
  if (name == "bicubic") return ScaleAlgo::Bicubic;
  if (name == "area") return ScaleAlgo::Area;
  if (name == "lanczos4") return ScaleAlgo::Lanczos4;
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(2);
}

struct Options {
  std::vector<std::string> positional;
  int width = 224;
  int height = 224;
  ScaleAlgo algo = ScaleAlgo::Bilinear;
  double eps = 2.0;
  double percentile = 5.0;
  double margin = 1.0;  // safety factor widening small-sample thresholds
  std::string profile;
  std::string out;
  std::string metrics_out;   // OpenMetrics exposition destination
  std::string stacks_out;    // collapsed-stack (flamegraph) destination
  std::string defense;       // preprocessing chain spec ("" / "none" = off)
  int threads = 0;  // 0 = DECAM_THREADS env / hardware default
  bool stats = false;
  bool json = false;
  bool profile_tree = false;
  bool short_circuit = false;
};

Options parse(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    // Both "--flag value" and "--flag=value" spellings are accepted.
    std::string inline_value;
    bool has_inline = false;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.resize(eq);
        has_inline = true;
      }
    }
    auto next = [&]() -> std::string {
      if (has_inline) return inline_value;
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--width") {
      options.width = std::atoi(next().c_str());
    } else if (arg == "--height") {
      options.height = std::atoi(next().c_str());
    } else if (arg == "--algo") {
      options.algo = parse_algo(next());
    } else if (arg == "--eps") {
      options.eps = std::atof(next().c_str());
    } else if (arg == "--percentile") {
      options.percentile = std::atof(next().c_str());
    } else if (arg == "--margin") {
      options.margin = std::atof(next().c_str());
    } else if (arg == "--profile") {
      options.profile = next();
    } else if (arg == "--out") {
      options.out = next();
    } else if (arg == "--threads") {
      options.threads = std::atoi(next().c_str());
      if (options.threads < 1) usage();
    } else if (arg == "--metrics-out") {
      options.metrics_out = next();
    } else if (arg == "--stacks-out") {
      options.stacks_out = next();
    } else if (arg == "--defense") {
      options.defense = next();
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--profile-tree") {
      options.profile_tree = true;
    } else if (arg == "--short-circuit") {
      options.short_circuit = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

int cmd_craft(const Options& options) {
  if (options.positional.size() != 3) usage();
  const Image source = read_image(options.positional[0]);
  const Image target = read_image(options.positional[1]);
  attack::AttackOptions attack_options;
  attack_options.algo = options.algo;
  attack_options.eps = options.eps;
  const attack::AttackResult result =
      attack::craft_attack(source, target, attack_options);
  write_image(result.image, options.positional[2]);
  std::printf(
      "crafted %s: |scale(A)-T|inf=%.2f mse=%.2f SSIM(A,O)=%.3f%s\n",
      options.positional[2].c_str(), result.report.downscale_linf,
      result.report.downscale_mse, result.report.source_ssim,
      result.report.converged ? "" : " (QP budget exhausted)");
  return 0;
}

struct Detectors {
  std::shared_ptr<core::ScalingDetector> scaling;
  std::shared_ptr<core::FilteringDetector> filtering;
  std::shared_ptr<core::SteganalysisDetector> steganalysis;
};

Detectors make_detectors(const Options& options) {
  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = options.width;
  scaling_config.down_height = options.height;
  scaling_config.down_algo = scaling_config.up_algo = options.algo;
  scaling_config.metric = core::Metric::MSE;
  core::FilteringDetectorConfig filtering_config;
  filtering_config.metric = core::Metric::SSIM;
  return {std::make_shared<core::ScalingDetector>(scaling_config),
          std::make_shared<core::FilteringDetector>(filtering_config),
          std::make_shared<core::SteganalysisDetector>()};
}

// Minimal JSON string escaping for paths and detector names.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

// Directories expand to their image files (sorted for stable ordering);
// plain paths pass through, preserving command-line order.
std::vector<std::string> expand_scan_inputs(
    const std::vector<std::string>& positional) {
  std::vector<std::string> files;
  for (const std::string& path : positional) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> dir_files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".ppm" || ext == ".pgm" || ext == ".bmp") {
          dir_files.push_back(entry.path().string());
        }
      }
      std::sort(dir_files.begin(), dir_files.end());
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else {
      files.push_back(path);
    }
  }
  return files;
}

// Everything scan learns about one file; computed on any pool lane,
// reported on the main thread in input order. A nullopt score means the
// short circuit skipped that detector.
struct ScanOutcome {
  std::string path;
  std::string error;  // non-empty = the file could not be scanned
  std::vector<std::optional<double>> scores;
  std::vector<double> latencies_ms;
  double total_ms = 0.0;
  bool flagged = false;
};

ScanOutcome scan_one(const std::string& path,
                     const std::vector<core::EnsembleDetector::Member>& members,
                     const core::EnsembleDetector& ensemble,
                     bool short_circuit) {
  ScanOutcome outcome;
  outcome.path = path;
  try {
    const Image image = read_image(path);
    auto& registry = obs::MetricsRegistry::instance();
    outcome.scores.resize(members.size());
    outcome.latencies_ms.resize(members.size(), 0.0);
    if (short_circuit) {
      // Short-circuit path: members score through a shared deferred
      // context and stop once the majority is decided; skipped members
      // never build their intermediates. Latency is the whole decision
      // (the per-method Table 7 split does not apply to a shared pass).
      const char* kName = "detector/ensemble";
      obs::ScopedTimer timer(registry.histogram(kName), kName);
      const core::EnsembleDetector::Decision decision =
          ensemble.decide(image);
      outcome.total_ms = timer.stop();
      outcome.scores = decision.scores;
      outcome.flagged = decision.attack;
      return outcome;
    }
    // Score each detector independently (no shared context) so the
    // recorded latencies keep the paper's Table 7 per-method semantics.
    std::vector<double> raw(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::string metric_name =
          "detector/" + members[i].detector->name();
      obs::ScopedTimer timer(registry.histogram(metric_name), metric_name);
      raw[i] = members[i].detector->score(image);
      outcome.scores[i] = raw[i];
      outcome.latencies_ms[i] = timer.stop();
      outcome.total_ms += outcome.latencies_ms[i];
    }
    outcome.flagged = ensemble.vote_scores(raw);
  } catch (const std::exception& error) {
    outcome.error = error.what();
  }
  return outcome;
}

// One scan report as a JSON object; `pad` indents every line so the same
// shape serves both the single-image object and array entries.
void print_scan_json(const ScanOutcome& outcome,
                     const std::vector<core::EnsembleDetector::Member>& members,
                     const char* pad) {
  if (!outcome.error.empty()) {
    std::printf("%s{\n%s  \"image\": \"%s\",\n%s  \"error\": \"%s\"\n%s}",
                pad, pad, json_escape(outcome.path).c_str(), pad,
                json_escape(outcome.error).c_str(), pad);
    return;
  }
  std::printf("%s{\n%s  \"image\": \"%s\",\n%s  \"detectors\": [\n", pad, pad,
              json_escape(outcome.path).c_str(), pad);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const core::Calibration& calibration = members[i].calibration;
    if (!outcome.scores[i].has_value()) {
      std::printf(
          "%s    {\"name\": \"%s\", \"score\": null, \"threshold\": %.17g, "
          "\"polarity\": \"%s\", \"vote\": \"skipped\"}%s\n",
          pad, json_escape(members[i].detector->name()).c_str(),
          calibration.threshold,
          calibration.polarity == core::Polarity::HighIsAttack
              ? "high_is_attack"
              : "low_is_attack",
          i + 1 < members.size() ? "," : "");
      continue;
    }
    const bool vote = core::is_attack(*outcome.scores[i], calibration);
    std::printf(
        "%s    {\"name\": \"%s\", \"score\": %.17g, \"threshold\": %.17g, "
        "\"polarity\": \"%s\", \"vote\": \"%s\", \"latency_ms\": %.3f}%s\n",
        pad, json_escape(members[i].detector->name()).c_str(),
        *outcome.scores[i], calibration.threshold,
        calibration.polarity == core::Polarity::HighIsAttack
            ? "high_is_attack"
            : "low_is_attack",
        vote ? "attack" : "ok", outcome.latencies_ms[i],
        i + 1 < members.size() ? "," : "");
  }
  std::printf(
      "%s  ],\n%s  \"verdict\": \"%s\",\n%s  \"total_latency_ms\": %.3f\n%s}",
      pad, pad, outcome.flagged ? "attack" : "benign", pad, outcome.total_ms,
      pad);
}

int cmd_scan(const Options& options) {
  if (options.positional.empty()) usage();
  const std::vector<std::string> files =
      expand_scan_inputs(options.positional);
  if (files.empty()) {
    std::fprintf(stderr, "scan: no image files found\n");
    return 1;
  }
  const Detectors detectors = make_detectors(options);

  core::CalibrationProfile profile;
  if (!options.profile.empty()) {
    profile = core::load_calibrations(options.profile);
  } else {
    // Without a profile, fall back to the universal CSP threshold plus
    // conservative generic thresholds (documented in EXPERIMENTS.md; for
    // production use `decamctl calibrate` on in-house benign images).
    profile["scaling/mse"] = {500.0, core::Polarity::HighIsAttack, 0.0};
    profile["filtering/min/ssim"] = {0.45, core::Polarity::LowIsAttack, 0.0};
    std::fprintf(stderr,
                 "note: no --profile given, using generic thresholds\n");
  }
  profile.emplace("steganalysis/csp",
                  core::Calibration{2.0, core::Polarity::HighIsAttack, 0.0});

  std::vector<core::EnsembleDetector::Member> members;
  for (const auto& detector :
       std::initializer_list<std::shared_ptr<const core::Detector>>{
           detectors.scaling, detectors.filtering, detectors.steganalysis}) {
    const auto found = profile.find(detector->name());
    if (found == profile.end()) {
      std::fprintf(stderr, "profile has no entry for %s\n",
                   detector->name().c_str());
      return 1;
    }
    members.push_back({detector, found->second});
  }

  // A defense chain wraps every member AFTER the profile lookup (profiles
  // key on the inner detector names). The wrapped names — e.g.
  // "squeeze4>scaling/mse" — flow into the reports and latency metrics, so
  // defended runs are visibly distinct from raw ones.
  if (!options.defense.empty() && options.defense != "none") {
    core::DefenseChain chain;
    try {
      chain = core::DefenseChain::parse(options.defense);
    } catch (const std::invalid_argument& error) {
      std::fprintf(stderr, "scan: bad --defense spec: %s\n", error.what());
      return 2;
    }
    std::fprintf(stderr,
                 "note: scoring through defense '%s'; thresholds calibrated "
                 "on raw images may not transfer\n",
                 chain.name().c_str());
    for (auto& member : members) {
      member.detector =
          std::make_shared<core::DefendedDetector>(member.detector, chain);
    }
  }

  const core::EnsembleDetector ensemble{members};

  if (options.profile_tree || !options.stacks_out.empty()) {
    obs::set_profiling_enabled(true);
  }
  if (!options.metrics_out.empty()) {
    obs::install_openmetrics_signal_handler(options.metrics_out);
  }

  // Fan the files out over the pool; parallel_map keeps input order. The
  // root span makes the whole scan one profile-tree node, so per-stage self
  // times sum to the scan wall time.
  std::vector<ScanOutcome> outcomes;
  {
    DECAM_SPAN("scan");
    outcomes = runtime::parallel_map(files, [&](const std::string& path) {
      ScanOutcome outcome =
          scan_one(path, members, ensemble, options.short_circuit);
      // Drain a pending SIGUSR1 between images so long scans can be dumped
      // mid-run (the exchange inside makes concurrent lanes race-free).
      obs::service_openmetrics_signal_dump();
      return outcome;
    });
  }
  obs::service_openmetrics_signal_dump();

  bool any_error = false;
  bool any_flagged = false;
  for (const ScanOutcome& outcome : outcomes) {
    any_error = any_error || !outcome.error.empty();
    any_flagged = any_flagged || outcome.flagged;
  }

  if (outcomes.size() == 1 && !outcomes[0].error.empty()) {
    // Single-file failure keeps the historical diagnostic on stderr.
    std::fprintf(stderr, "decamctl: %s\n", outcomes[0].error.c_str());
    return 1;
  }

  if (options.json) {
    if (outcomes.size() == 1) {
      print_scan_json(outcomes[0], members, "");
      std::printf("\n");
    } else {
      std::printf("[\n");
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        print_scan_json(outcomes[i], members, "  ");
        std::printf("%s\n", i + 1 < outcomes.size() ? "," : "");
      }
      std::printf("]\n");
    }
  } else if (outcomes.size() == 1) {
    const ScanOutcome& outcome = outcomes[0];
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!outcome.scores[i].has_value()) {
        std::printf("%-18s skipped (majority already decided)\n",
                    members[i].detector->name().c_str());
        continue;
      }
      std::printf("%-18s score=%-10.4g threshold=%-10.4g -> %s\n",
                  members[i].detector->name().c_str(), *outcome.scores[i],
                  members[i].calibration.threshold,
                  core::is_attack(*outcome.scores[i], members[i].calibration)
                      ? "ATTACK"
                      : "ok");
    }
    std::printf("verdict: %s\n", outcome.flagged ? "ATTACK IMAGE" : "benign");
  } else {
    // One line per file, input order, votes inline.
    for (const ScanOutcome& outcome : outcomes) {
      if (!outcome.error.empty()) {
        std::printf("%s\tERROR\t%s\n", outcome.path.c_str(),
                    outcome.error.c_str());
        continue;
      }
      std::printf("%s\t%s", outcome.path.c_str(),
                  outcome.flagged ? "ATTACK" : "benign");
      for (std::size_t i = 0; i < members.size(); ++i) {
        std::printf(
            "\t%s=%s", members[i].detector->name().c_str(),
            !outcome.scores[i].has_value()
                ? "skipped"
                : (core::is_attack(*outcome.scores[i], members[i].calibration)
                       ? "ATTACK"
                       : "ok"));
      }
      std::printf("\n");
    }
  }
  if (options.stats) {
    // With --json, stdout must stay machine-parseable; stats go to stderr.
    std::FILE* sink = options.json ? stderr : stdout;
    std::fprintf(sink,
                 "\nper-detector latency, Table 7 ordering "
                 "(paper: CSP < MSE < SSIM):\n%s",
                 obs::latency_table_by_prefix("detector/").render().c_str());

    report::Table cache_table({"cache", "hits", "misses", "hit rate",
                               "evictions", "entries", "bytes"});
    const auto add_cache_row = [&](const char* name, std::uint64_t hits,
                                   std::uint64_t misses,
                                   std::uint64_t evictions,
                                   std::size_t entries, std::uint64_t bytes) {
      const std::uint64_t lookups = hits + misses;
      cache_table.add_row(
          {name, std::to_string(hits), std::to_string(misses),
           lookups > 0
               ? report::format_percent(static_cast<double>(hits) /
                                        static_cast<double>(lookups))
               : "-",
           std::to_string(evictions), std::to_string(entries),
           std::to_string(bytes)});
    };
    const KernelCacheStats kernels = kernel_cache_stats();
    add_cache_row("kernel_cache", kernels.hits, kernels.misses,
                  kernels.evictions, kernels.entries, kernels.resident_bytes);
    const FftPlanCacheStats fft = fft_plan_cache_stats();
    add_cache_row("fft_plan_cache", fft.hits, fft.misses, fft.evictions,
                  fft.size, fft.resident_bytes);
    const FftPlanCacheStats bluestein = bluestein_plan_cache_stats();
    add_cache_row("bluestein_plan_cache", bluestein.hits, bluestein.misses,
                  bluestein.evictions, bluestein.size,
                  bluestein.resident_bytes);
    std::fprintf(sink, "\ncache utilisation:\n%s",
                 cache_table.render().c_str());

    // Ensemble counters: images scored plus, per method, how often the
    // short circuit skipped it. Pre-resolving the skip counters keeps the
    // rows visible (as zeros) even when nothing was skipped.
    auto& registry = obs::MetricsRegistry::instance();
    for (const auto& member : members) {
      std::string method = member.detector->name();
      if (const std::size_t slash = method.find('/');
          slash != std::string::npos) {
        method.resize(slash);
      }
      (void)registry.counter("battery/skip_" + method);
    }
    report::Table battery_table({"battery counter", "count"});
    for (const auto& [name, value] : registry.counter_values()) {
      if (name.rfind("battery/", 0) == 0) {
        battery_table.add_row({name, std::to_string(value)});
      }
    }
    std::fprintf(sink, "\nensemble short-circuit counters:\n%s",
                 battery_table.render().c_str());
    std::fprintf(sink, "\nresident memory:\n%s",
                 obs::render_memory_table().render().c_str());
  }
  if (options.profile_tree) {
    std::fprintf(options.json ? stderr : stdout,
                 "\nstage profile (self-time ordered):\n%s",
                 obs::render_profile_tree().render().c_str());
  }
  if (!options.stacks_out.empty()) {
    obs::write_collapsed_stacks(options.stacks_out);
    std::fprintf(stderr, "wrote collapsed stacks to %s\n",
                 options.stacks_out.c_str());
  }
  if (!options.metrics_out.empty()) {
    obs::write_openmetrics(options.metrics_out);
    std::fprintf(stderr, "wrote OpenMetrics exposition to %s\n",
                 options.metrics_out.c_str());
  }
  obs::flush_trace();
  // Shell-friendly: load failures dominate, then detections.
  if (any_error) return 1;
  return any_flagged ? 3 : 0;
}

int cmd_calibrate(const Options& options) {
  if (options.positional.empty() || options.out.empty()) usage();
  const Detectors detectors = make_detectors(options);
  struct BenignScores {
    double scaling = 0.0;
    double filtering = 0.0;
  };
  const std::vector<BenignScores> scored = runtime::parallel_map(
      options.positional, [&](const std::string& path) {
        const Image benign = read_image(path);
        return BenignScores{detectors.scaling->score(benign),
                            detectors.filtering->score(benign)};
      });
  std::vector<double> scaling_scores, filtering_scores;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    scaling_scores.push_back(scored[i].scaling);
    filtering_scores.push_back(scored[i].filtering);
    std::fprintf(stderr, "scored %s\n", options.positional[i].c_str());
  }
  core::CalibrationProfile profile;
  profile[detectors.scaling->name()] = core::calibrate_black_box(
      scaling_scores, options.percentile, core::Polarity::HighIsAttack);
  profile[detectors.filtering->name()] = core::calibrate_black_box(
      filtering_scores, options.percentile, core::Polarity::LowIsAttack);
  if (options.margin != 1.0) {
    // Small calibration sets underestimate the benign tails; the margin
    // widens each threshold away from the benign side (attack scores sit
    // orders of magnitude away, so detection power is unaffected).
    if (options.margin < 1.0) {
      std::fprintf(stderr, "margin must be >= 1\n");
      return 1;
    }
    profile[detectors.scaling->name()].threshold *= options.margin;
    profile[detectors.filtering->name()].threshold /= options.margin;
  }
  profile[detectors.steganalysis->name()] =
      core::Calibration{2.0, core::Polarity::HighIsAttack, 0.0};
  core::save_calibrations(profile, options.out);
  std::printf("wrote %zu calibrations to %s (percentile %.1f%%, %zu benign "
              "samples)\n",
              profile.size(), options.out.c_str(), options.percentile,
              options.positional.size());
  return 0;
}

int cmd_downscale(const Options& options) {
  if (options.positional.size() != 2) usage();
  const Image image = read_image(options.positional[0]);
  const Image down = resize(image, options.width, options.height,
                            options.algo);
  write_image(down, options.positional[1]);
  std::printf("wrote %dx%d %s view to %s\n", options.width, options.height,
              to_string(options.algo), options.positional[1].c_str());
  return 0;
}

int cmd_spectrum(const Options& options) {
  if (options.positional.size() != 2) usage();
  const Image image = read_image(options.positional[0]);
  write_image(centered_log_spectrum(image), options.positional[1]);
  std::printf("wrote centered log spectrum to %s\n",
              options.positional[1].c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Options options = parse(argc, argv, 2);
  if (options.threads > 0) runtime::set_thread_count(options.threads);
  try {
    if (command == "craft") return cmd_craft(options);
    if (command == "scan") return cmd_scan(options);
    if (command == "calibrate") return cmd_calibrate(options);
    if (command == "downscale") return cmd_downscale(options);
    if (command == "spectrum") return cmd_spectrum(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "decamctl: %s\n", error.what());
    return 1;
  }
  usage();
}
