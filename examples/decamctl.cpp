// decamctl — a command-line front end to the whole library, operating on
// real image files (PPM/PGM/BMP). The fifth "application": everything the
// other examples demonstrate programmatically, scriptable from a shell.
//
//   decamctl craft  <source> <target> <out>  [--algo A] [--eps E]
//       Hide <target> inside <source> (the image-scaling attack).
//   decamctl scan   <image> [--width W --height H] [--algo A]
//                   [--profile FILE] [--stats] [--json]
//       Run all three detectors + majority vote on one image. --stats adds
//       a per-detector latency table (Table 7 ordering); --json prints a
//       machine-readable report (scores, thresholds, verdict, latency-ms).
//   decamctl calibrate <benign images...> --out FILE
//                   [--percentile P] [--width W --height H] [--algo A]
//       Build a black-box calibration profile from benign samples.
//   decamctl downscale <image> <out> [--width W --height H] [--algo A]
//       Show what the CNN would see (the pipeline's view).
//   decamctl spectrum <image> <out>
//       Write the centered log-magnitude spectrum (steganalysis view).
//
// Images are read by extension: .ppm/.pgm via PNM, .bmp via BMP.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "attack/scale_attack.h"
#include "core/calibration_io.h"
#include "core/ensemble.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "imaging/image_io.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "signal/spectrum.h"

using namespace decam;

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: decamctl <craft|scan|calibrate|downscale|spectrum> ...\n"
      "  craft <source> <target> <out> [--algo A] [--eps E]\n"
      "  scan <image> [--width W] [--height H] [--algo A] [--profile F]\n"
      "       [--stats] [--json]\n"
      "  calibrate <benign...> --out F [--percentile P] [--margin M]\n"
      "            [--width W]\n"
      "            [--height H] [--algo A]\n"
      "  downscale <image> <out> [--width W] [--height H] [--algo A]\n"
      "  spectrum <image> <out>\n"
      "  algos: nearest bilinear bicubic area lanczos4\n");
  std::exit(2);
}

Image read_image(const std::string& path) {
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".bmp") {
    return read_bmp(path);
  }
  return read_pnm(path);
}

void write_image(const Image& img, const std::string& path) {
  Image clamped = img;
  clamped.clamp();
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".bmp") {
    write_bmp(clamped, path);
  } else {
    write_pnm(clamped, path);
  }
}

ScaleAlgo parse_algo(const std::string& name) {
  if (name == "nearest") return ScaleAlgo::Nearest;
  if (name == "bilinear") return ScaleAlgo::Bilinear;
  if (name == "bicubic") return ScaleAlgo::Bicubic;
  if (name == "area") return ScaleAlgo::Area;
  if (name == "lanczos4") return ScaleAlgo::Lanczos4;
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(2);
}

struct Options {
  std::vector<std::string> positional;
  int width = 224;
  int height = 224;
  ScaleAlgo algo = ScaleAlgo::Bilinear;
  double eps = 2.0;
  double percentile = 5.0;
  double margin = 1.0;  // safety factor widening small-sample thresholds
  std::string profile;
  std::string out;
  bool stats = false;
  bool json = false;
};

Options parse(int argc, char** argv, int first) {
  Options options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--width") {
      options.width = std::atoi(next().c_str());
    } else if (arg == "--height") {
      options.height = std::atoi(next().c_str());
    } else if (arg == "--algo") {
      options.algo = parse_algo(next());
    } else if (arg == "--eps") {
      options.eps = std::atof(next().c_str());
    } else if (arg == "--percentile") {
      options.percentile = std::atof(next().c_str());
    } else if (arg == "--margin") {
      options.margin = std::atof(next().c_str());
    } else if (arg == "--profile") {
      options.profile = next();
    } else if (arg == "--out") {
      options.out = next();
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage();
    } else {
      options.positional.push_back(arg);
    }
  }
  return options;
}

int cmd_craft(const Options& options) {
  if (options.positional.size() != 3) usage();
  const Image source = read_image(options.positional[0]);
  const Image target = read_image(options.positional[1]);
  attack::AttackOptions attack_options;
  attack_options.algo = options.algo;
  attack_options.eps = options.eps;
  const attack::AttackResult result =
      attack::craft_attack(source, target, attack_options);
  write_image(result.image, options.positional[2]);
  std::printf(
      "crafted %s: |scale(A)-T|inf=%.2f mse=%.2f SSIM(A,O)=%.3f%s\n",
      options.positional[2].c_str(), result.report.downscale_linf,
      result.report.downscale_mse, result.report.source_ssim,
      result.report.converged ? "" : " (QP budget exhausted)");
  return 0;
}

struct Detectors {
  std::shared_ptr<core::ScalingDetector> scaling;
  std::shared_ptr<core::FilteringDetector> filtering;
  std::shared_ptr<core::SteganalysisDetector> steganalysis;
};

Detectors make_detectors(const Options& options) {
  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = options.width;
  scaling_config.down_height = options.height;
  scaling_config.down_algo = scaling_config.up_algo = options.algo;
  scaling_config.metric = core::Metric::MSE;
  core::FilteringDetectorConfig filtering_config;
  filtering_config.metric = core::Metric::SSIM;
  return {std::make_shared<core::ScalingDetector>(scaling_config),
          std::make_shared<core::FilteringDetector>(filtering_config),
          std::make_shared<core::SteganalysisDetector>()};
}

// Minimal JSON string escaping for paths and detector names.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

int cmd_scan(const Options& options) {
  if (options.positional.size() != 1) usage();
  const Image image = read_image(options.positional[0]);
  const Detectors detectors = make_detectors(options);

  core::CalibrationProfile profile;
  if (!options.profile.empty()) {
    profile = core::load_calibrations(options.profile);
  } else {
    // Without a profile, fall back to the universal CSP threshold plus
    // conservative generic thresholds (documented in EXPERIMENTS.md; for
    // production use `decamctl calibrate` on in-house benign images).
    profile["scaling/mse"] = {500.0, core::Polarity::HighIsAttack, 0.0};
    profile["filtering/min/ssim"] = {0.45, core::Polarity::LowIsAttack, 0.0};
    std::fprintf(stderr,
                 "note: no --profile given, using generic thresholds\n");
  }
  profile.emplace("steganalysis/csp",
                  core::Calibration{2.0, core::Polarity::HighIsAttack, 0.0});

  std::vector<core::EnsembleDetector::Member> members;
  for (const auto& detector :
       std::initializer_list<std::shared_ptr<const core::Detector>>{
           detectors.scaling, detectors.filtering, detectors.steganalysis}) {
    const auto found = profile.find(detector->name());
    if (found == profile.end()) {
      std::fprintf(stderr, "profile has no entry for %s\n",
                   detector->name().c_str());
      return 1;
    }
    members.push_back({detector, found->second});
  }

  // Score each detector exactly once, through an obs timer so the latency
  // lands in the registry (and in the Chrome trace when DECAM_TRACE is on).
  auto& registry = obs::MetricsRegistry::instance();
  std::vector<double> scores(members.size());
  std::vector<double> latencies_ms(members.size());
  std::vector<std::string> metric_names;
  double total_ms = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    metric_names.push_back("detector/" + members[i].detector->name());
    obs::ScopedTimer timer(registry.histogram(metric_names.back()),
                           metric_names.back());
    scores[i] = members[i].detector->score(image);
    latencies_ms[i] = timer.stop();
    total_ms += latencies_ms[i];
  }
  const core::EnsembleDetector ensemble{members};
  const bool flagged = ensemble.vote_scores(scores);

  if (options.json) {
    std::printf("{\n  \"image\": \"%s\",\n  \"detectors\": [\n",
                json_escape(options.positional[0]).c_str());
    for (std::size_t i = 0; i < members.size(); ++i) {
      const core::Calibration& calibration = members[i].calibration;
      const bool vote = core::is_attack(scores[i], calibration);
      std::printf(
          "    {\"name\": \"%s\", \"score\": %.17g, \"threshold\": %.17g, "
          "\"polarity\": \"%s\", \"vote\": \"%s\", \"latency_ms\": %.3f}%s\n",
          json_escape(members[i].detector->name()).c_str(), scores[i],
          calibration.threshold,
          calibration.polarity == core::Polarity::HighIsAttack
              ? "high_is_attack"
              : "low_is_attack",
          vote ? "attack" : "ok", latencies_ms[i],
          i + 1 < members.size() ? "," : "");
    }
    std::printf(
        "  ],\n  \"verdict\": \"%s\",\n  \"total_latency_ms\": %.3f\n}\n",
        flagged ? "attack" : "benign", total_ms);
  } else {
    for (std::size_t i = 0; i < members.size(); ++i) {
      std::printf("%-18s score=%-10.4g threshold=%-10.4g -> %s\n",
                  members[i].detector->name().c_str(), scores[i],
                  members[i].calibration.threshold,
                  core::is_attack(scores[i], members[i].calibration)
                      ? "ATTACK"
                      : "ok");
    }
    std::printf("verdict: %s\n", flagged ? "ATTACK IMAGE" : "benign");
  }
  if (options.stats) {
    // With --json, stdout must stay machine-parseable; stats go to stderr.
    std::fprintf(options.json ? stderr : stdout,
                 "\nper-detector latency, Table 7 ordering "
                 "(paper: CSP < MSE < SSIM):\n%s",
                 obs::latency_table_by_prefix("detector/").render().c_str());
  }
  obs::flush_trace();
  return flagged ? 3 : 0;  // shell-friendly: nonzero exit on detection
}

int cmd_calibrate(const Options& options) {
  if (options.positional.empty() || options.out.empty()) usage();
  const Detectors detectors = make_detectors(options);
  std::vector<double> scaling_scores, filtering_scores;
  for (const std::string& path : options.positional) {
    const Image benign = read_image(path);
    scaling_scores.push_back(detectors.scaling->score(benign));
    filtering_scores.push_back(detectors.filtering->score(benign));
    std::fprintf(stderr, "scored %s\n", path.c_str());
  }
  core::CalibrationProfile profile;
  profile[detectors.scaling->name()] = core::calibrate_black_box(
      scaling_scores, options.percentile, core::Polarity::HighIsAttack);
  profile[detectors.filtering->name()] = core::calibrate_black_box(
      filtering_scores, options.percentile, core::Polarity::LowIsAttack);
  if (options.margin != 1.0) {
    // Small calibration sets underestimate the benign tails; the margin
    // widens each threshold away from the benign side (attack scores sit
    // orders of magnitude away, so detection power is unaffected).
    if (options.margin < 1.0) {
      std::fprintf(stderr, "margin must be >= 1\n");
      return 1;
    }
    profile[detectors.scaling->name()].threshold *= options.margin;
    profile[detectors.filtering->name()].threshold /= options.margin;
  }
  profile[detectors.steganalysis->name()] =
      core::Calibration{2.0, core::Polarity::HighIsAttack, 0.0};
  core::save_calibrations(profile, options.out);
  std::printf("wrote %zu calibrations to %s (percentile %.1f%%, %zu benign "
              "samples)\n",
              profile.size(), options.out.c_str(), options.percentile,
              options.positional.size());
  return 0;
}

int cmd_downscale(const Options& options) {
  if (options.positional.size() != 2) usage();
  const Image image = read_image(options.positional[0]);
  const Image down = resize(image, options.width, options.height,
                            options.algo);
  write_image(down, options.positional[1]);
  std::printf("wrote %dx%d %s view to %s\n", options.width, options.height,
              to_string(options.algo), options.positional[1].c_str());
  return 0;
}

int cmd_spectrum(const Options& options) {
  if (options.positional.size() != 2) usage();
  const Image image = read_image(options.positional[0]);
  write_image(centered_log_spectrum(image), options.positional[1]);
  std::printf("wrote centered log spectrum to %s\n",
              options.positional[1].c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Options options = parse(argc, argv, 2);
  try {
    if (command == "craft") return cmd_craft(options);
    if (command == "scan") return cmd_scan(options);
    if (command == "calibrate") return cmd_calibrate(options);
    if (command == "downscale") return cmd_downscale(options);
    if (command == "spectrum") return cmd_spectrum(options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "decamctl: %s\n", error.what());
    return 1;
  }
  usage();
}
