// Quickstart: the 60-second tour of the library.
//
//   1. Generate a "photo" and a malicious target.
//   2. Craft an image-scaling attack (the wolf hidden in the sheep).
//   3. Run all three Decamouflage detectors plus the ensemble on both the
//      benign and the attack image.
//   4. Write the images involved to ./quickstart_out/ as PPM files so you
//      can look at them.
//
// Run:  ./quickstart [seed]
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>

#include "attack/scale_attack.h"
#include "core/calibration.h"
#include "core/ensemble.h"
#include "core/filtering_detector.h"
#include "core/scaling_detector.h"
#include "core/steganalysis_detector.h"
#include "data/rng.h"
#include "data/synth.h"
#include "imaging/image_io.h"

using namespace decam;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // --- 1. A scene (what the user uploads) and a target (what the attacker
  //        wants the CNN to see after the 448 -> 112 downscale).
  data::SceneParams params = data::scene_params(data::Regime::A);
  params.min_side = params.max_side = 448;
  data::Rng scene_rng(seed);
  data::Rng target_rng(seed + 1);
  const Image scene = generate_scene(params, scene_rng);
  const Image target = data::generate_target(112, 112, target_rng);
  std::printf("scene: %dx%d, target: %dx%d\n", scene.width(), scene.height(),
              target.width(), target.height());

  // --- 2. Craft the attack against a bilinear pre-processing pipeline.
  attack::AttackOptions attack_options;
  attack_options.algo = ScaleAlgo::Bilinear;
  attack_options.eps = 2.0;
  const attack::AttackResult attack =
      attack::craft_attack(scene, target, attack_options);
  std::printf(
      "attack crafted: |scale(A)-T|_inf = %.2f, SSIM(A, source) = %.3f\n",
      attack.report.downscale_linf, attack.report.source_ssim);

  // --- 3. Decamouflage. Configure the three detectors for the deployed
  //        pipeline geometry, give them thresholds, take a majority vote.
  core::ScalingDetectorConfig scaling_config;
  scaling_config.down_width = scaling_config.down_height = 112;
  scaling_config.metric = core::Metric::MSE;
  auto scaling = std::make_shared<core::ScalingDetector>(scaling_config);

  core::FilteringDetectorConfig filtering_config;
  filtering_config.metric = core::Metric::SSIM;
  auto filtering = std::make_shared<core::FilteringDetector>(filtering_config);

  auto steganalysis = std::make_shared<core::SteganalysisDetector>();

  // Quick black-box calibration from a handful of benign samples (a real
  // deployment would use a larger hold-out set; see the benches).
  std::vector<double> scaling_scores, filtering_scores;
  data::Rng calib_rng(seed + 2);
  for (int i = 0; i < 8; ++i) {
    data::Rng child = calib_rng.fork();
    const Image benign = generate_scene(params, child);
    scaling_scores.push_back(scaling->score(benign));
    filtering_scores.push_back(filtering->score(benign));
  }
  const core::EnsembleDetector decamouflage({
      {scaling, core::calibrate_black_box(scaling_scores, 10.0,
                                          core::Polarity::HighIsAttack)},
      {filtering, core::calibrate_black_box(filtering_scores, 10.0,
                                            core::Polarity::LowIsAttack)},
      {steganalysis, core::Calibration{2.0, core::Polarity::HighIsAttack, 0}},
  });

  for (const auto& [label, image] :
       {std::pair<const char*, const Image&>{"benign", scene},
        std::pair<const char*, const Image&>{"attack", attack.image}}) {
    const auto votes = decamouflage.votes(image);
    std::printf("%s image: scaling=%s filtering=%s steganalysis=%s -> %s\n",
                label, votes[0] ? "ATTACK" : "ok", votes[1] ? "ATTACK" : "ok",
                votes[2] ? "ATTACK" : "ok",
                decamouflage.is_attack(image) ? "REJECTED" : "accepted");
  }

  // --- 4. Artefacts for human eyes.
  const std::filesystem::path out = "quickstart_out";
  std::filesystem::create_directories(out);
  write_pnm(scene, (out / "scene.ppm").string());
  write_pnm(target, (out / "target.ppm").string());
  write_pnm(attack.image, (out / "attack.ppm").string());
  Image downscaled = resize(attack.image, 112, 112, ScaleAlgo::Bilinear);
  write_pnm(downscaled.clamp(), (out / "attack_downscaled.ppm").string());
  write_pnm(scaling->round_trip(attack.image).clamp(),
            (out / "attack_roundtrip.ppm").string());
  std::printf("wrote scene/target/attack images to %s/\n",
              out.string().c_str());
  return 0;
}
